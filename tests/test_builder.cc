/**
 * @file
 * Tests for dual-mode recording, label construction (Fig. 3 timing),
 * granularity re-aggregation, and the disk cache.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/builder.hh"

using namespace psca;

namespace {

BuildConfig
smallConfig()
{
    BuildConfig cfg;
    cfg.intervalInstr = 10000;
    cfg.warmupInstr = 20000;
    cfg.counterIds = {
        CounterRegistry::index(Ctr::InstRetired),
        CounterRegistry::index(Ctr::L1dMiss),
        CounterRegistry::index(Ctr::UopsStalledOnDep),
        CounterRegistry::index(Ctr::BranchMispred),
    };
    return cfg;
}

Workload
kernelWorkload(KernelParams kp, uint64_t len, const char *name)
{
    AppGenome g;
    g.name = name;
    g.seed = 31;
    PhaseSpec p;
    p.kernel = kp;
    p.meanLenInstr = 1e9;
    g.phases = {p};
    Workload w;
    w.genome = g;
    w.inputSeed = 1;
    w.lengthInstr = len;
    w.name = name;
    return w;
}

} // namespace

TEST(Builder, RecordShapes)
{
    const BuildConfig cfg = smallConfig();
    const Workload w = kernelWorkload(
        {.kind = KernelKind::Ilp, .chains = 4}, 80000, "shapes");
    const TraceRecord r = recordTrace(w, cfg, 3, 7);
    EXPECT_EQ(r.numIntervals(), 8u);
    EXPECT_EQ(r.numCounters, 4u);
    EXPECT_EQ(r.deltaHigh.size(), 8u * 4u);
    EXPECT_EQ(r.appId, 3u);
    EXPECT_EQ(r.traceId, 7u);
}

TEST(Builder, InstRetiredDeltaMatchesInterval)
{
    const BuildConfig cfg = smallConfig();
    const Workload w = kernelWorkload(
        {.kind = KernelKind::Branchy, .workingSetBytes = 1 << 20},
        60000, "delta");
    const TraceRecord r = recordTrace(w, cfg, 0, 0);
    for (size_t t = 0; t < r.numIntervals(); ++t) {
        EXPECT_FLOAT_EQ(r.rowHigh(t)[0], 10000.0f);
        EXPECT_FLOAT_EQ(r.rowLow(t)[0], 10000.0f);
    }
}

TEST(Builder, GateFriendlyKernelLabelsOne)
{
    const BuildConfig cfg = smallConfig();
    const Workload w = kernelWorkload(
        {.kind = KernelKind::PointerChase, .workingSetBytes = 32 << 20},
        80000, "gate");
    const TraceRecord r = recordTrace(w, cfg, 0, 0);
    const auto labels = blockLabels(r, 1, 0.90);
    size_t gates = 0;
    for (uint8_t y : labels)
        gates += y;
    EXPECT_GE(gates, labels.size() - 1);
}

TEST(Builder, WidthHungryKernelLabelsZero)
{
    const BuildConfig cfg = smallConfig();
    const Workload w = kernelWorkload(
        {.kind = KernelKind::Ilp, .chains = 14}, 80000, "hungry");
    const TraceRecord r = recordTrace(w, cfg, 0, 0);
    const auto labels = blockLabels(r, 1, 0.90);
    size_t gates = 0;
    for (uint8_t y : labels)
        gates += y;
    EXPECT_LE(gates, 1u);
}

TEST(Builder, SlaThresholdMonotonic)
{
    // Lowering pSla can only enable more gating (Table 5 relabeling).
    const BuildConfig cfg = smallConfig();
    const Workload w = kernelWorkload(
        {.kind = KernelKind::Stencil, .workingSetBytes = 8 << 20},
        100000, "sla");
    const TraceRecord r = recordTrace(w, cfg, 0, 0);
    size_t prev = 0;
    for (double p : {0.95, 0.90, 0.80, 0.70}) {
        const auto labels = blockLabels(r, 1, p);
        size_t gates = 0;
        for (uint8_t y : labels)
            gates += y;
        EXPECT_GE(gates, prev);
        prev = gates;
    }
}

TEST(Builder, AssemblePairsXtWithYtPlus2)
{
    const BuildConfig cfg = smallConfig();
    const Workload w = kernelWorkload(
        {.kind = KernelKind::Ilp, .chains = 4}, 100000, "t2");
    const TraceRecord r = recordTrace(w, cfg, 5, 0);
    AssemblyOptions opts;
    opts.granularityInstr = 10000;
    const Dataset d = assembleDataset({r}, opts, cfg.intervalInstr);
    // 10 intervals -> samples for t = 0..7 (t+2 must exist).
    EXPECT_EQ(d.numSamples(), r.numIntervals() - 2);
    const auto labels = blockLabels(r, 1, opts.pSla);
    for (size_t t = 0; t < d.numSamples(); ++t)
        EXPECT_EQ(d.y[t], labels[t + 2]);
    EXPECT_EQ(d.appId[0], 5u);
}

TEST(Builder, CoarserGranularityAggregates)
{
    const BuildConfig cfg = smallConfig();
    const Workload w = kernelWorkload(
        {.kind = KernelKind::Stream, .workingSetBytes = 1 << 20,
         .computePerElem = 2},
        200000, "agg");
    const TraceRecord r = recordTrace(w, cfg, 0, 0);

    AssemblyOptions fine, coarse;
    fine.granularityInstr = 10000;
    coarse.granularityInstr = 40000;
    const Dataset df = assembleDataset({r}, fine, cfg.intervalInstr);
    const Dataset dc = assembleDataset({r}, coarse, cfg.intervalInstr);
    EXPECT_EQ(dc.numSamples(), r.numIntervals() / 4 - 2);
    EXPECT_GT(df.numSamples(), dc.numSamples());
    // Cycle-normalized feature 0 (inst retired / cycles = IPC) must
    // stay in a plausible band after aggregation.
    for (size_t i = 0; i < dc.numSamples(); ++i) {
        EXPECT_GT(dc.row(i)[0], 0.0f);
        EXPECT_LE(dc.row(i)[0], 4.01f);
    }
}

TEST(Builder, ColumnSubsetSelected)
{
    const BuildConfig cfg = smallConfig();
    const Workload w = kernelWorkload(
        {.kind = KernelKind::Ilp, .chains = 4}, 80000, "cols");
    const TraceRecord r = recordTrace(w, cfg, 0, 0);
    AssemblyOptions opts;
    opts.columns = {1, 3};
    const Dataset d = assembleDataset({r}, opts, cfg.intervalInstr);
    EXPECT_EQ(d.numFeatures, 2u);
}

TEST(Builder, CacheRoundTrip)
{
    setenv("PSCA_CACHE_DIR", "/tmp/psca_test_cache", 1);
    std::filesystem::remove_all("/tmp/psca_test_cache");

    const BuildConfig cfg = smallConfig();
    std::vector<Workload> ws{
        kernelWorkload({.kind = KernelKind::Ilp, .chains = 4}, 60000,
                       "cache_a"),
        kernelWorkload({.kind = KernelKind::FpSerial, .fp = true},
                       60000, "cache_b")};
    const auto first = recordCorpus(ws, {0, 1}, cfg, "test");
    const auto second = recordCorpus(ws, {0, 1}, cfg, "test");
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].name, second[i].name);
        EXPECT_EQ(first[i].cyclesHigh, second[i].cyclesHigh);
        EXPECT_EQ(first[i].deltaLow, second[i].deltaLow);
    }
    unsetenv("PSCA_CACHE_DIR");
}

TEST(Builder, IdealResidencyBounds)
{
    const BuildConfig cfg = smallConfig();
    const TraceRecord gate = recordTrace(
        kernelWorkload({.kind = KernelKind::PointerChase,
                        .workingSetBytes = 32 << 20},
                       60000, "res_g"),
        cfg, 0, 0);
    const TraceRecord hungry = recordTrace(
        kernelWorkload({.kind = KernelKind::Ilp, .chains = 14}, 60000,
                       "res_h"),
        cfg, 1, 1);
    EXPECT_GT(idealLowPowerResidency({gate}, 0.9), 0.8);
    EXPECT_LT(idealLowPowerResidency({hungry}, 0.9), 0.2);
    const double mixed = idealLowPowerResidency({gate, hungry}, 0.9);
    EXPECT_GT(mixed, 0.3);
    EXPECT_LT(mixed, 0.7);
}
