/**
 * @file
 * Tests for the bounded structured event log (obs/events.hh):
 * capacity bounding with deterministic drop-oldest, the common-layer
 * emitEvent() bridge, report-section byte-identity when no event was
 * logged, JSON shape, and concurrent appends.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "obs/events.hh"

using namespace psca;
using obs::EventLog;

TEST(EventLog, CapacityBoundDropsOldest)
{
    EventLog log(16);
    for (int i = 0; i < 40; ++i)
        log.log("test", LogLevel::Info,
                "event " + std::to_string(i));
    EXPECT_EQ(log.logged(), 40u);
    EXPECT_EQ(log.dropped(), 24u);
    EXPECT_EQ(log.size(), 16u);

    // Deterministic tail: the oldest 24 went, the newest 16 remain
    // in order with their original sequence numbers.
    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 16u);
    EXPECT_EQ(events.front().seq, 24u);
    EXPECT_EQ(events.back().seq, 39u);
    for (size_t i = 1; i < events.size(); ++i)
        EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
    EXPECT_EQ(events.back().msg, "event 39");
    EXPECT_EQ(events.back().category, "test");
}

TEST(EventLog, EmitEventBridgesToProcessLog)
{
    EventLog &log = EventLog::instance();
    const uint64_t before = log.logged();
    emitEvent("bridge_test", LogLevel::Warn, "through the hook");
    EXPECT_EQ(log.logged(), before + 1);
    const auto events = log.snapshot();
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events.back().category, "bridge_test");
    EXPECT_EQ(events.back().msg, "through the hook");
    EXPECT_EQ(events.back().level, LogLevel::Warn);
}

TEST(EventLog, ReportSectionAbsentWhenEmpty)
{
    // Event-free runs must keep the prior report byte layout: the
    // section writer emits nothing at all.
    EventLog log(16);
    std::ostringstream os;
    log.writeReportSection(os);
    EXPECT_EQ(os.str(), "");

    log.log("test", LogLevel::Info, "now there is one");
    std::ostringstream os2;
    log.writeReportSection(os2);
    EXPECT_NE(os2.str().find("\"events\""), std::string::npos);
}

TEST(EventLog, JsonShape)
{
    EventLog log(16);
    log.log("guardrail", LogLevel::Warn, "trip #1");
    log.log("checkpoint", LogLevel::Info, "resume: 3/7 \"units\"");
    std::ostringstream os;
    log.writeJson(os, "");
    const std::string json = os.str();
    EXPECT_NE(json.find("\"logged\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"level\": \"warn\""), std::string::npos);
    EXPECT_NE(json.find("\"level\": \"info\""), std::string::npos);
    EXPECT_NE(json.find("\"category\": \"guardrail\""),
              std::string::npos);
    // The quote in the message must come out escaped.
    EXPECT_NE(json.find("3/7 \\\"units\\\""), std::string::npos);
}

TEST(EventLog, LevelNames)
{
    EXPECT_STREQ(obs::eventLevelName(LogLevel::Debug), "debug");
    EXPECT_STREQ(obs::eventLevelName(LogLevel::Info), "info");
    EXPECT_STREQ(obs::eventLevelName(LogLevel::Warn), "warn");
}

TEST(EventLog, ClearForgetsEverything)
{
    EventLog log(16);
    for (int i = 0; i < 20; ++i)
        log.log("test", LogLevel::Info, "x");
    log.clear();
    EXPECT_EQ(log.logged(), 0u);
    EXPECT_EQ(log.dropped(), 0u);
    EXPECT_EQ(log.size(), 0u);
    // Sequence numbering restarts.
    log.log("test", LogLevel::Info, "fresh");
    EXPECT_EQ(log.snapshot().front().seq, 0u);
}

TEST(EventLog, ConcurrentAppendsAreAllCounted)
{
    EventLog log(64);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 500;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&log, t] {
            for (int i = 0; i < kPerThread; ++i)
                log.log("worker", LogLevel::Info,
                        std::to_string(t) + ":" + std::to_string(i));
        });
    }
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(log.logged(), uint64_t(kThreads) * kPerThread);
    EXPECT_EQ(log.size(), 64u);
    EXPECT_EQ(log.dropped(), uint64_t(kThreads) * kPerThread - 64);
    // Sequence numbers are unique and strictly increasing.
    const auto events = log.snapshot();
    for (size_t i = 1; i < events.size(); ++i)
        EXPECT_LT(events[i - 1].seq, events[i].seq);
}
