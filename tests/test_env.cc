/**
 * @file
 * Tests for validated environment-variable parsing (common/env.hh):
 * strict full-string parses, warn-and-default on garbage or
 * out-of-range values, and the unset-means-default convention every
 * PSCA_* knob relies on.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hh"

using namespace psca;

namespace {

constexpr const char *kVar = "PSCA_ENV_TEST_VAR";

class EnvTest : public ::testing::Test
{
  protected:
    void SetUp() override { unsetenv(kVar); }
    void TearDown() override { unsetenv(kVar); }

    void set(const char *v) { setenv(kVar, v, 1); }
};

} // namespace

TEST_F(EnvTest, TryParseLongAcceptsOnlyFullIntegers)
{
    long long v = 0;
    EXPECT_TRUE(env::tryParseLong("42", v));
    EXPECT_EQ(v, 42);
    EXPECT_TRUE(env::tryParseLong("-7", v));
    EXPECT_EQ(v, -7);
    EXPECT_FALSE(env::tryParseLong("", v));
    EXPECT_FALSE(env::tryParseLong(nullptr, v));
    EXPECT_FALSE(env::tryParseLong("4x", v));
    EXPECT_FALSE(env::tryParseLong("4 ", v));
    EXPECT_FALSE(env::tryParseLong("3.5", v));
    EXPECT_FALSE(env::tryParseLong("99999999999999999999999", v));
}

TEST_F(EnvTest, TryParseDoubleAcceptsOnlyFullNumbers)
{
    double v = 0.0;
    EXPECT_TRUE(env::tryParseDouble("0.25", v));
    EXPECT_DOUBLE_EQ(v, 0.25);
    EXPECT_TRUE(env::tryParseDouble("-1e3", v));
    EXPECT_DOUBLE_EQ(v, -1000.0);
    EXPECT_FALSE(env::tryParseDouble("", v));
    EXPECT_FALSE(env::tryParseDouble("0.25s", v));
    EXPECT_FALSE(env::tryParseDouble("pi", v));
}

TEST_F(EnvTest, TryParseBoolKnowsBothTokenFamilies)
{
    bool v = false;
    for (const char *t : {"1", "true", "on", "yes"}) {
        v = false;
        EXPECT_TRUE(env::tryParseBool(t, v)) << t;
        EXPECT_TRUE(v) << t;
    }
    for (const char *t : {"0", "false", "off", "no"}) {
        v = true;
        EXPECT_TRUE(env::tryParseBool(t, v)) << t;
        EXPECT_FALSE(v) << t;
    }
    EXPECT_FALSE(env::tryParseBool("TRUE", v)); // tokens are exact
    EXPECT_FALSE(env::tryParseBool("2", v));
    EXPECT_FALSE(env::tryParseBool("", v));
}

TEST_F(EnvTest, IntIfSetRespectsUnsetGarbageAndRange)
{
    long long v = 99;
    EXPECT_FALSE(env::intIfSet(kVar, v, 1, 10)); // unset
    EXPECT_EQ(v, 99);

    set("7");
    EXPECT_TRUE(env::intIfSet(kVar, v, 1, 10));
    EXPECT_EQ(v, 7);

    v = 99;
    set("seven");
    EXPECT_FALSE(env::intIfSet(kVar, v, 1, 10)); // garbage
    EXPECT_EQ(v, 99);

    set("11");
    EXPECT_FALSE(env::intIfSet(kVar, v, 1, 10)); // out of range
    EXPECT_EQ(v, 99);

    set("");
    EXPECT_FALSE(env::intIfSet(kVar, v, 1, 10)); // empty = unset
}

TEST_F(EnvTest, IntOrFallsBackToDefault)
{
    EXPECT_EQ(env::intOr(kVar, 4, 1, 64), 4);
    set("16");
    EXPECT_EQ(env::intOr(kVar, 4, 1, 64), 16);
    set("0");
    EXPECT_EQ(env::intOr(kVar, 4, 1, 64), 4); // below lo
    set("4x4");
    EXPECT_EQ(env::intOr(kVar, 4, 1, 64), 4);
}

TEST_F(EnvTest, DoubleOrFallsBackToDefault)
{
    EXPECT_DOUBLE_EQ(env::doubleOr(kVar, 0.5, 0.0, 1.0), 0.5);
    set("0.25");
    EXPECT_DOUBLE_EQ(env::doubleOr(kVar, 0.5, 0.0, 1.0), 0.25);
    set("1.5");
    EXPECT_DOUBLE_EQ(env::doubleOr(kVar, 0.5, 0.0, 1.0), 0.5);
    set("half");
    EXPECT_DOUBLE_EQ(env::doubleOr(kVar, 0.5, 0.0, 1.0), 0.5);
}

TEST_F(EnvTest, FlagOrFallsBackToDefault)
{
    EXPECT_TRUE(env::flagOr(kVar, true));
    EXPECT_FALSE(env::flagOr(kVar, false));
    set("off");
    EXPECT_FALSE(env::flagOr(kVar, true));
    set("yes");
    EXPECT_TRUE(env::flagOr(kVar, false));
    set("maybe");
    EXPECT_TRUE(env::flagOr(kVar, true)); // garbage keeps default
    EXPECT_FALSE(env::flagOr(kVar, false));
}

TEST_F(EnvTest, EnumOrAcceptsOnlyListedTokens)
{
    const auto allowed = {"quick", "default", "full"};
    EXPECT_EQ(env::enumOr(kVar, allowed, "default"), "default");
    set("quick");
    EXPECT_EQ(env::enumOr(kVar, allowed, "default"), "quick");
    set("Quick"); // exact match only
    EXPECT_EQ(env::enumOr(kVar, allowed, "default"), "default");
    set("turbo");
    EXPECT_EQ(env::enumOr(kVar, allowed, "default"), "default");
}

TEST_F(EnvTest, StringOrTreatsEmptyAsUnset)
{
    EXPECT_EQ(env::stringOr(kVar, "fallback"), "fallback");
    set("/tmp/cache");
    EXPECT_EQ(env::stringOr(kVar, "fallback"), "/tmp/cache");
    set("");
    EXPECT_EQ(env::stringOr(kVar, "fallback"), "fallback");
}
