/**
 * @file
 * Tests for the online adaptation service (src/serve): the versioned
 * firmware rollback ring's publish/rollback/retention and crash
 * windows (fork-and-SIGKILL between stage and commit), the drift
 * detector's z-statistics and trip-rate trending, the full lifecycle
 * cycle HEALTHY -> DRIFTING -> RETRAINING -> SHADOWING -> PROMOTING
 * -> HEALTHY on a planted distribution shift, same-seed determinism
 * of the lifecycle transition sequence, fail-safe behaviour under
 * every serve.* fault site, and the /health + /events?since HTTP
 * surface.
 *
 * Fork discipline (same as test_runner.cc): children _exit() and the
 * parent never touches the ThreadPool/SimMemo/Journal singletons from
 * a forked context.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault.hh"
#include "common/journal.hh"
#include "common/serialize.hh"
#include "obs/http.hh"
#include "serve/drift.hh"
#include "serve/ring.hh"
#include "serve/service.hh"
#include "trace/genome.hh"

using namespace psca;
using namespace psca::serve;

namespace {

std::string
freshDir(const std::string &name)
{
    const std::string dir =
        std::filesystem::temp_directory_path().string() +
        "/psca_serve_test_" + std::to_string(::getpid()) + "_" + name;
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    std::filesystem::create_directories(dir);
    return dir;
}

std::string
readAll(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    std::ostringstream s;
    s << f.rdbuf();
    return s.str();
}

/** A small valid firmware package; @p tag varies the image bytes. */
FirmwarePackage
syntheticPackage(uint32_t tag)
{
    FirmwarePackage pkg;
    pkg.name = "synthetic-v" + std::to_string(tag);
    pkg.granularityInstr = 20000;
    pkg.columns = {0, 1, 2, 3};
    for (FirmwareSlot *slot : {&pkg.high, &pkg.low}) {
        slot->program.numInputs = 4;
        slot->program.mem = {0.25f, 0.5f,
                             static_cast<float>(tag)};
        slot->scaler.mean = {0.0f, 0.0f, 0.0f, 0.0f};
        slot->scaler.invStd = {1.0f, 1.0f, 1.0f, 1.0f};
        slot->threshold = 0.5f + 0.01f * static_cast<float>(tag);
    }
    return pkg;
}

/** Identity scaler: z == input, so test rows speak z directly. */
FeatureScaler
identityScaler(size_t dims)
{
    FeatureScaler s;
    s.mean.assign(dims, 0.0f);
    s.invStd.assign(dims, 1.0f);
    return s;
}

/** Memory-bound pointer chasing: a gate-friendly distribution. */
Workload
memBoundWorkload(uint64_t seed, uint64_t len)
{
    AppGenome g;
    g.name = "serve_membound";
    g.seed = seed;
    PhaseSpec p;
    p.kernel = {.kind = KernelKind::PointerChase,
                .workingSetBytes = 16 << 20,
                .chains = 2};
    p.weight = 1.0;
    p.meanLenInstr = 120e3;
    g.phases = {p};
    Workload w;
    w.genome = g;
    w.inputSeed = 1;
    w.lengthInstr = len;
    w.name = g.name;
    return w;
}

/** Compute-bound ILP: the opposite corner of the feature space. */
Workload
ilpWorkload(uint64_t seed, uint64_t len)
{
    AppGenome g;
    g.name = "serve_ilp";
    g.seed = seed;
    PhaseSpec p;
    p.kernel = {.kind = KernelKind::Ilp, .chains = 14};
    p.weight = 1.0;
    p.meanLenInstr = 120e3;
    g.phases = {p};
    Workload w;
    w.genome = g;
    w.inputSeed = 1;
    w.lengthInstr = len;
    w.name = g.name;
    return w;
}

BuildConfig
testBuildConfig()
{
    BuildConfig cfg;
    cfg.intervalInstr = 10000;
    cfg.warmupInstr = 20000;
    cfg.counterIds = {
        CounterRegistry::index(Ctr::InstRetired),
        CounterRegistry::index(Ctr::StallCount),
        CounterRegistry::index(Ctr::L1dMiss),
        CounterRegistry::index(Ctr::LoadLatSum),
        CounterRegistry::index(Ctr::MshrOccSum),
        CounterRegistry::index(Ctr::UopsStalledOnDep),
        CounterRegistry::index(Ctr::UopsReady),
        CounterRegistry::index(Ctr::SqOccSum),
    };
    return cfg;
}

ServeConfig
testServeConfig(const std::string &dir)
{
    ServeConfig cfg;
    cfg.dir = dir;
    cfg.seed = 5;
    cfg.granularityInstr = 20000;
    cfg.columns = {0, 1, 2, 3, 4, 5, 6, 7};
    cfg.forestTrees = 4;
    cfg.forestDepth = 4;
    cfg.driftWindow = 6;
    cfg.driftZ = 2.0;
    cfg.abIntervals = 8;
    cfg.probationIntervals = 8;
    cfg.cooldownBlocks = 8;
    cfg.ringKeep = 4;
    return cfg;
}

/** The standard shift schedule: mem-bound, then compute-bound. */
std::vector<ServeSegment>
shiftSchedule(uint64_t len = 400000)
{
    return {{memBoundWorkload(3, len), 24},
            {ilpWorkload(4, len), 60}};
}

bool
lifecycleContains(const ServeOutcome &out, const std::string &needle)
{
    for (const std::string &line : out.lifecycle)
        if (line.find(needle) != std::string::npos)
            return true;
    return false;
}

class ServeFixture : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        FaultRegistry::instance().configure("", 1);
    }
    void TearDown() override
    {
        FaultRegistry::instance().configure("", 1);
    }
};

using RingTest = ServeFixture;
using DriftTest = ServeFixture;
using ServiceTest = ServeFixture;

/** One blocking HTTP GET against 127.0.0.1:port. */
std::string
httpGet(int port, const std::string &path)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
    {
        ::close(fd);
        return "";
    }
    const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
    ::send(fd, req.data(), req.size(), 0);
    std::string resp;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        resp.append(buf, static_cast<size_t>(n));
    ::close(fd);
    return resp;
}

} // namespace

TEST_F(RingTest, PromoteRollbackRetention)
{
    const std::string dir = freshDir("ring_basic");
    FirmwareRing ring(dir, /*keep=*/3);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.activeVersion(), 0u);

    for (uint32_t tag = 1; tag <= 5; ++tag) {
        const uint32_t v = ring.promote(syntheticPackage(tag));
        EXPECT_EQ(v, tag);
        EXPECT_EQ(ring.activeVersion(), tag);
        EXPECT_TRUE(ring.verifyAll());
    }
    // keep=3: v1 and v2 pruned, their image files gone.
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_FALSE(std::filesystem::exists(ring.imagePath(1)));
    EXPECT_FALSE(std::filesystem::exists(ring.imagePath(2)));
    EXPECT_TRUE(std::filesystem::exists(ring.imagePath(5)));

    // Rollback repoints the manifest; image bytes are untouched.
    const std::string v4_bytes = readAll(ring.imagePath(4));
    EXPECT_EQ(ring.previousVersion(5), 4u);
    EXPECT_TRUE(ring.rollbackTo(4));
    EXPECT_EQ(ring.activeVersion(), 4u);
    EXPECT_TRUE(ring.verifyImage(4));
    EXPECT_EQ(readAll(ring.imagePath(4)), v4_bytes);

    // A reopened ring sees the same state (manifest replay).
    FirmwareRing reopened(dir, 3);
    EXPECT_EQ(reopened.activeVersion(), 4u);
    EXPECT_EQ(reopened.size(), 3u);
    FirmwarePackage pkg;
    uint32_t v = 0;
    EXPECT_TRUE(reopened.loadActive(pkg, v));
    EXPECT_EQ(v, 4u);
    EXPECT_EQ(pkg.name, "synthetic-v4");

    // Rolling back to a pruned version must refuse.
    EXPECT_FALSE(ring.rollbackTo(1));
    EXPECT_EQ(ring.activeVersion(), 4u);
}

TEST_F(RingTest, CrashBetweenStageAndCommitPublishesNothing)
{
    const std::string dir = freshDir("ring_crash");
    {
        FirmwareRing setup(dir, 4);
        ASSERT_EQ(setup.promote(syntheticPackage(1)), 1u);
    }
    const std::string v1_bytes =
        readAll(dir + "/fw.v1.bin");

    // Child stages v2 (image + manifest written to temp names) and
    // SIGKILLs itself before the commit renames.
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        FirmwareRing ring(dir, 4);
        ring.setPromoteHook([] { ::raise(SIGKILL); });
        ring.promote(syntheticPackage(2));
        ::_exit(1); // unreachable
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // Nothing torn or mixed: the ring still serves v1, byte-exact.
    FirmwareRing ring(dir, 4);
    EXPECT_EQ(ring.activeVersion(), 1u);
    EXPECT_EQ(ring.size(), 1u);
    EXPECT_TRUE(ring.verifyAll());
    EXPECT_FALSE(std::filesystem::exists(dir + "/fw.v2.bin"));
    FirmwarePackage pkg;
    uint32_t v = 0;
    ASSERT_TRUE(ring.loadActive(pkg, v));
    EXPECT_EQ(v, 1u);
    EXPECT_EQ(readAll(dir + "/fw.v1.bin"), v1_bytes);
}

TEST_F(RingTest, CrashBetweenCommitRenamesLeavesOldManifestValid)
{
    // Simulate the worst prefix-commit window: the image rename
    // landed (stage order puts it first) but the process died before
    // the manifest rename. The new image exists under its final name
    // yet the old manifest never references it.
    const std::string dir = freshDir("ring_prefix");
    {
        FirmwareRing setup(dir, 4);
        ASSERT_EQ(setup.promote(syntheticPackage(1)), 1u);
    }
    {
        BinaryWriter out(dir + "/fw.v2.bin");
        syntheticPackage(2).write(out);
    }

    FirmwareRing ring(dir, 4);
    EXPECT_EQ(ring.activeVersion(), 1u);
    EXPECT_EQ(ring.size(), 1u);
    EXPECT_TRUE(ring.verifyAll());
    FirmwarePackage pkg;
    uint32_t v = 0;
    ASSERT_TRUE(ring.loadActive(pkg, v));
    EXPECT_EQ(v, 1u);
    EXPECT_EQ(pkg.name, "synthetic-v1");
}

TEST_F(RingTest, InjectedSwapCrashLeavesRingUnchanged)
{
    const std::string dir = freshDir("ring_swapfault");
    FirmwareRing ring(dir, 4);
    ASSERT_EQ(ring.promote(syntheticPackage(1)), 1u);
    const std::string manifest_bytes = readAll(ring.manifestPath());

    FaultRegistry::instance().configure("serve.swap_crash:1", 7);
    EXPECT_EQ(ring.promote(syntheticPackage(2)), 0u);
    EXPECT_EQ(ring.activeVersion(), 1u);
    EXPECT_EQ(ring.size(), 1u);
    EXPECT_EQ(readAll(ring.manifestPath()), manifest_bytes);
    EXPECT_TRUE(ring.verifyAll());

    // Disarmed, the same promote succeeds.
    FaultRegistry::instance().configure("", 7);
    EXPECT_EQ(ring.promote(syntheticPackage(2)), 2u);
    EXPECT_TRUE(ring.verifyAll());
}

TEST_F(RingTest, CorruptActiveImageWalksBackToVerifiedVersion)
{
    const std::string dir = freshDir("ring_walkback");
    FirmwareRing ring(dir, 4);
    ASSERT_EQ(ring.promote(syntheticPackage(1)), 1u);
    ASSERT_EQ(ring.promote(syntheticPackage(2)), 2u);
    const std::string v1_bytes = readAll(ring.imagePath(1));

    // Flip a byte in the active image.
    {
        std::fstream f(ring.imagePath(2),
                       std::ios::in | std::ios::out |
                           std::ios::binary);
        f.seekp(12);
        char c = 0;
        f.read(&c, 1);
        f.seekp(12);
        c = static_cast<char>(c ^ 0x5a);
        f.write(&c, 1);
    }
    EXPECT_FALSE(ring.verifyImage(2));

    FirmwarePackage pkg;
    uint32_t v = 0;
    ASSERT_TRUE(ring.loadActive(pkg, v));
    EXPECT_EQ(v, 1u);
    EXPECT_EQ(pkg.name, "synthetic-v1");
    EXPECT_EQ(ring.activeVersion(), 1u);
    EXPECT_EQ(readAll(ring.imagePath(1)), v1_bytes);
}

TEST_F(DriftTest, StableDistributionDoesNotDrift)
{
    DriftDetector det(DriftConfig{4, 3.0, 16.0, 4.0, 0.25});
    det.setReference(identityScaler(2), identityScaler(2), 2);
    const std::vector<float> row{0.5f, -0.5f};
    for (int i = 0; i < 8; ++i)
        det.observe(row, CoreMode::HighPerf, 0);
    ASSERT_TRUE(det.windowComplete());
    DriftVerdict v = det.takeWindow();
    EXPECT_FALSE(v.drifted);
    EXPECT_NEAR(v.maxAbsMeanZ, 0.5, 1e-6);
}

TEST_F(DriftTest, MeanShiftInScalerUnitsDrifts)
{
    DriftDetector det(DriftConfig{4, 3.0, 16.0, 4.0, 0.25});
    det.setReference(identityScaler(2), identityScaler(2), 2);
    const std::vector<float> shifted{0.0f, 5.0f};
    for (int i = 0; i < 4; ++i)
        det.observe(shifted, CoreMode::LowPower, 0);
    DriftVerdict v = det.takeWindow();
    EXPECT_TRUE(v.drifted);
    EXPECT_EQ(v.reason, "feature mean shift");
    EXPECT_EQ(v.worstFeature, 1u);
    EXPECT_NEAR(v.maxAbsMeanZ, 5.0, 1e-6);
}

TEST_F(DriftTest, TripRateTrendDriftsAfterBaselineWindow)
{
    DriftDetector det(DriftConfig{4, 3.0, 16.0, 4.0, 0.25});
    det.setReference(identityScaler(1), identityScaler(1), 1);
    const std::vector<float> calm{0.0f};

    // First window: high trip rate, but it only sets the baseline.
    for (int i = 0; i < 4; ++i)
        det.observe(calm, CoreMode::HighPerf, 1);
    DriftVerdict first = det.takeWindow();
    EXPECT_FALSE(first.drifted);
    EXPECT_NEAR(first.tripRate, 1.0, 1e-9);

    // Second window at the same rate: no trend, no drift.
    for (int i = 0; i < 4; ++i)
        det.observe(calm, CoreMode::HighPerf, 1);
    EXPECT_FALSE(det.takeWindow().drifted);

    // Re-reference with a calm baseline, then spike the rate.
    det.setReference(identityScaler(1), identityScaler(1), 1);
    for (int i = 0; i < 4; ++i)
        det.observe(calm, CoreMode::HighPerf, 0);
    EXPECT_FALSE(det.takeWindow().drifted);
    for (int i = 0; i < 4; ++i)
        det.observe(calm, CoreMode::HighPerf, 2);
    DriftVerdict spiked = det.takeWindow();
    EXPECT_TRUE(spiked.drifted);
    EXPECT_EQ(spiked.reason, "guardrail trip-rate trend");
}

TEST_F(DriftTest, NonFiniteInputsAreNeutralized)
{
    DriftDetector det(DriftConfig{2, 3.0, 16.0, 4.0, 0.25});
    det.setReference(identityScaler(1), identityScaler(1), 1);
    const std::vector<float> bad{
        std::numeric_limits<float>::quiet_NaN()};
    det.observe(bad, CoreMode::HighPerf, 0);
    det.observe(bad, CoreMode::HighPerf, 0);
    DriftVerdict v = det.takeWindow();
    EXPECT_FALSE(v.drifted);
    EXPECT_EQ(v.maxAbsMeanZ, 0.0);
}

TEST_F(ServiceTest, FullLifecycleCycleOnDistributionShift)
{
    const std::string dir = freshDir("svc_cycle");
    Service service(testServeConfig(dir), testBuildConfig(),
                    shiftSchedule());
    const ServeOutcome &out = service.run();

    EXPECT_GE(out.driftsDetected, 1u);
    EXPECT_GE(out.retrains, 2u); // bootstrap + at least one drift
    EXPECT_GE(out.shadowsScored, 8u);
    EXPECT_GE(out.promotions, 1u);
    EXPECT_EQ(out.rollbacks, 0u) << "fault-free run must not roll back";
    EXPECT_EQ(out.retrainFailures, 0u);
    EXPECT_EQ(out.swapFailures, 0u);
    EXPECT_GE(out.activeVersion, 2u);

    EXPECT_TRUE(lifecycleContains(out, "HEALTHY->DRIFTING"));
    EXPECT_TRUE(lifecycleContains(out, "DRIFTING->RETRAINING"));
    EXPECT_TRUE(lifecycleContains(out, "RETRAINING->SHADOWING"));
    EXPECT_TRUE(lifecycleContains(out, "SHADOWING->PROMOTING"));
    EXPECT_TRUE(lifecycleContains(out, "probation passed"));
    EXPECT_TRUE(service.ring().verifyAll());

    // The lifecycle artifact matches the in-memory sequence.
    const std::string artifact = readAll(dir + "/lifecycle.txt");
    std::string expect;
    for (const std::string &line : out.lifecycle)
        expect += line + "\n";
    EXPECT_EQ(artifact, expect);
}

TEST_F(ServiceTest, SameSeedRunsAreByteIdentical)
{
    const std::string dir_a = freshDir("svc_det_a");
    const std::string dir_b = freshDir("svc_det_b");

    Service a(testServeConfig(dir_a), testBuildConfig(),
              shiftSchedule());
    const ServeOutcome out_a = a.run();
    Service b(testServeConfig(dir_b), testBuildConfig(),
              shiftSchedule());
    const ServeOutcome out_b = b.run();

    ASSERT_EQ(out_a.lifecycle.size(), out_b.lifecycle.size());
    for (size_t i = 0; i < out_a.lifecycle.size(); ++i)
        EXPECT_EQ(out_a.lifecycle[i], out_b.lifecycle[i]) << i;
    EXPECT_EQ(out_a.activeVersion, out_b.activeVersion);
    EXPECT_EQ(readAll(dir_a + "/lifecycle.txt"),
              readAll(dir_b + "/lifecycle.txt"));
    EXPECT_EQ(
        readAll(a.ring().imagePath(out_a.activeVersion)),
        readAll(b.ring().imagePath(out_b.activeVersion)));
}

TEST_F(ServiceTest, RetrainFailureFailsSafeToActiveFirmware)
{
    const std::string dir = freshDir("svc_retrainfail");
    // Ordinal 1 is the first post-bootstrap retrain (bootstrap is
    // ordinal 0 and must succeed for the service to come up).
    FaultRegistry::instance().configure("serve.retrain_fail:1", 11);
    // serve.retrain_fail at rate 1 would also kill the bootstrap
    // train; it is checked only on the drift path, so bootstrap
    // (which calls trainCandidate directly) still succeeds.
    Service service(testServeConfig(dir), testBuildConfig(),
                    shiftSchedule());
    const ServeOutcome &out = service.run();

    EXPECT_GE(out.driftsDetected, 1u);
    EXPECT_GE(out.retrainFailures, 1u);
    EXPECT_EQ(out.promotions, 0u);
    EXPECT_EQ(out.activeVersion, 1u);
    EXPECT_TRUE(lifecycleContains(out, "retrain failed"));
    EXPECT_TRUE(service.ring().verifyAll());
    FirmwarePackage pkg;
    uint32_t v = 0;
    FirmwareRing reopened(dir, 4);
    ASSERT_TRUE(reopened.loadActive(pkg, v));
    EXPECT_EQ(v, 1u);
}

TEST_F(ServiceTest, ShadowCorruptionRejectsCandidate)
{
    const std::string dir = freshDir("svc_shadowcorrupt");
    FaultRegistry::instance().configure("serve.shadow_corrupt:1", 13);
    Service service(testServeConfig(dir), testBuildConfig(),
                    shiftSchedule());
    const ServeOutcome &out = service.run();

    EXPECT_GE(out.shadowCorruptions, 1u);
    EXPECT_EQ(out.promotions, 0u);
    EXPECT_GE(out.rejections, 1u);
    EXPECT_EQ(out.activeVersion, 1u);
    EXPECT_TRUE(lifecycleContains(out, "corrupt"));
    EXPECT_TRUE(service.ring().verifyAll());
}

TEST_F(ServiceTest, MidSwapCrashKeepsServingLastGoodFirmware)
{
    const std::string dir = freshDir("svc_swapcrash");
    // Bootstrap fault-free so v1 exists, then resume with the swap
    // site armed: the drift-triggered promotion dies mid-transaction
    // and the service keeps serving v1.
    {
        Service bootstrap_only(testServeConfig(dir),
                               testBuildConfig(), shiftSchedule());
        bootstrap_only.run(/*max_blocks=*/1);
    }
    const std::string v1_bytes = readAll(dir + "/fw.v1.bin");
    ASSERT_FALSE(v1_bytes.empty());

    FaultRegistry::instance().configure("serve.swap_crash:1", 17);
    Service service(testServeConfig(dir), testBuildConfig(),
                    shiftSchedule());
    const ServeOutcome &out = service.run();

    EXPECT_GE(out.swapFailures, 1u);
    EXPECT_EQ(out.promotions, 0u);
    EXPECT_EQ(out.activeVersion, 1u);
    EXPECT_TRUE(lifecycleContains(out, "swap failed"));
    EXPECT_TRUE(service.ring().verifyAll());
    EXPECT_EQ(readAll(dir + "/fw.v1.bin"), v1_bytes);
}

TEST_F(ServiceTest, ProbationRegressionRollsBackByteIdentical)
{
    const std::string dir = freshDir("svc_probation");
    // Every probation block gains 50 synthetic guardrail trips: any
    // promoted candidate regresses immediately.
    FaultRegistry::instance().configure(
        "serve.probation_regress:1:50", 19);
    Service service(testServeConfig(dir), testBuildConfig(),
                    shiftSchedule());
    const ServeOutcome &out = service.run();

    EXPECT_GE(out.promotions, 1u);
    EXPECT_GE(out.rollbacks, 1u);
    EXPECT_EQ(out.activeVersion, 1u)
        << "service must converge back to the pre-swap firmware";
    EXPECT_TRUE(lifecycleContains(out, "PROMOTING->ROLLED_BACK"));
    EXPECT_TRUE(lifecycleContains(out, "rollback to v1 verified"));
    EXPECT_TRUE(service.ring().verifyAll());

    // The restored image is byte-identical to the original v1.
    FirmwareRing reopened(dir, 4);
    FirmwarePackage pkg;
    uint32_t v = 0;
    ASSERT_TRUE(reopened.loadActive(pkg, v));
    EXPECT_EQ(v, 1u);
    EXPECT_EQ(reopened.imageChecksum(1),
              reopened.imageChecksum(reopened.activeVersion()));
}

TEST_F(ServiceTest, HealthAndIncrementalEventsOverHttp)
{
    const std::string dir = freshDir("svc_http");
    obs::HttpServer &server = obs::HttpServer::instance();
    ASSERT_TRUE(server.start(0));
    const int port = server.port();

    // No service yet: /health reports idle.
    EXPECT_NE(httpGet(port, "/health").find("\"state\": \"idle\""),
              std::string::npos);

    Service service(testServeConfig(dir), testBuildConfig(),
                    shiftSchedule());
    service.run(/*max_blocks=*/4);

    const std::string health = httpGet(port, "/health");
    EXPECT_NE(health.find("200 OK"), std::string::npos);
    EXPECT_NE(health.find("\"state\": \"HEALTHY\""),
              std::string::npos);
    EXPECT_NE(health.find("\"active_version\": 1"),
              std::string::npos);

    // Incremental event polling: ?since past the tail returns an
    // empty list, a full fetch does not.
    const std::string all = httpGet(port, "/events");
    EXPECT_NE(all.find("\"serve\""), std::string::npos);
    const std::string none =
        httpGet(port, "/events?since=999999999");
    EXPECT_EQ(none.find("\"serve\""), std::string::npos);
    EXPECT_NE(none.find("200 OK"), std::string::npos);

    server.stop();
}

TEST_F(ServiceTest, DisabledLifecycleServesBootstrapForever)
{
    const std::string dir = freshDir("svc_disabled");
    ServeConfig cfg = testServeConfig(dir);
    cfg.lifecycle = false;
    Service service(cfg, testBuildConfig(), shiftSchedule());
    const ServeOutcome &out = service.run();

    EXPECT_EQ(out.driftsDetected, 0u);
    EXPECT_EQ(out.promotions, 0u);
    EXPECT_EQ(out.rollbacks, 0u);
    EXPECT_EQ(out.activeVersion, 1u);
    EXPECT_GT(out.blocks, 0u);
}
