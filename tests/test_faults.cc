/**
 * @file
 * Tests for the deterministic fault-injection framework: spec
 * parsing, per-site Bernoulli/draw substreams (pure functions of
 * seed, site, and key), telemetry fault application, and a
 * reference fault mix driven through the closed adaptation loop —
 * the run completes, every degradation is counted, and the
 * guardrailed RSV stays within 2x of the fault-free run.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/fault.hh"
#include "core/guardrail.hh"
#include "core/pipeline.hh"
#include "obs/stats.hh"
#include "telemetry/counters.hh"

using namespace psca;

namespace {

uint64_t
counterValue(const char *name)
{
    const auto *c = obs::StatRegistry::instance().findCounter(name);
    return c ? c->value() : 0;
}

/** Disarm every site (and restore the seed) after each test. */
class FaultTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        seed_ = FaultRegistry::instance().seed();
        FaultRegistry::instance().configure("", seed_);
    }
    void TearDown() override
    {
        FaultRegistry::instance().configure("", seed_);
    }
    uint64_t seed_ = 0;
};

} // namespace

TEST_F(FaultTest, SpecParsingArmsAndDisarmsSites)
{
    auto &reg = FaultRegistry::instance();
    reg.configure("telemetry.noise:0.5,uc.vm_trap:0.25:7", seed_);
    EXPECT_TRUE(reg.anyEnabled());

    const FaultSite &noise = reg.site("telemetry.noise");
    EXPECT_TRUE(noise.enabled());
    EXPECT_DOUBLE_EQ(noise.rate(), 0.5);
    EXPECT_DOUBLE_EQ(noise.param(0.05), 0.05); // no param given

    const FaultSite &trap = reg.site("uc.vm_trap");
    EXPECT_TRUE(trap.enabled());
    EXPECT_DOUBLE_EQ(trap.rate(), 0.25);
    EXPECT_DOUBLE_EQ(trap.param(0.0), 7.0);

    // Sites not named in the spec stay disabled.
    EXPECT_FALSE(reg.site("persist.memo_corrupt").enabled());

    reg.configure("", seed_);
    EXPECT_FALSE(reg.anyEnabled());
    EXPECT_FALSE(noise.enabled());
    EXPECT_FALSE(trap.enabled());
}

TEST_F(FaultTest, RateZeroArmsNothing)
{
    auto &reg = FaultRegistry::instance();
    reg.configure("telemetry.noise:0", seed_);
    EXPECT_FALSE(reg.anyEnabled());
    EXPECT_FALSE(reg.site("telemetry.noise").enabled());
    const FaultSite &s = reg.site("telemetry.noise");
    for (uint64_t k = 0; k < 100; ++k)
        EXPECT_FALSE(s.fires(k));
}

TEST_F(FaultTest, MalformedSpecsAreFatal)
{
    // Re-exec instead of fork: forking while the pool's threads are
    // live can deadlock the death-test child.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    auto &reg = FaultRegistry::instance();
    EXPECT_DEATH(reg.configure("telemetry.noise", seed_),
                 "expected site:rate");
    EXPECT_DEATH(reg.configure("uc.vm_trap:1.5", seed_),
                 "not a probability");
    EXPECT_DEATH(reg.configure("uc.vm_trap:0.5x", seed_),
                 "not a probability");
    EXPECT_DEATH(reg.configure("uc.vm_trap:0.5:abc", seed_),
                 "not a number");
    EXPECT_DEATH(
        reg.configure("uc.vm_trap:0.1,uc.vm_trap:0.2", seed_),
        "twice");
}

TEST_F(FaultTest, FireSequenceIsPureFunctionOfSeedSiteAndKey)
{
    auto &reg = FaultRegistry::instance();
    reg.configure("telemetry.dropped_snapshot:0.3", 1234);
    const FaultSite &s = reg.site("telemetry.dropped_snapshot");

    std::vector<bool> first;
    for (uint64_t k = 0; k < 2000; ++k)
        first.push_back(s.fires(k));

    // Re-arming with the same seed reproduces the sequence exactly,
    // and call order is irrelevant (each key is its own substream).
    reg.configure("telemetry.dropped_snapshot:0.3", 1234);
    for (uint64_t k = 2000; k-- > 0;)
        EXPECT_EQ(s.fires(k), first[k]) << "key " << k;

    // The empirical rate tracks the configured one.
    size_t fired = 0;
    for (bool b : first)
        fired += b;
    EXPECT_GT(fired, 2000 * 0.3 / 2);
    EXPECT_LT(fired, 2000 * 0.3 * 2);

    // A different seed produces a different sequence.
    reg.configure("telemetry.dropped_snapshot:0.3", 99);
    std::vector<bool> reseeded;
    for (uint64_t k = 0; k < 2000; ++k)
        reseeded.push_back(s.fires(k));
    EXPECT_NE(first, reseeded);

    // Different sites at the same seed diverge too.
    reg.configure(
        "telemetry.dropped_snapshot:0.3,telemetry.noise:0.3", 1234);
    const FaultSite &other = reg.site("telemetry.noise");
    std::vector<bool> other_seq;
    for (uint64_t k = 0; k < 2000; ++k)
        other_seq.push_back(other.fires(k));
    EXPECT_NE(first, other_seq);
}

TEST_F(FaultTest, DrawAndGaussianAreDeterministicPerKeyAndLane)
{
    auto &reg = FaultRegistry::instance();
    reg.configure("telemetry.noise:1", 42);
    const FaultSite &s = reg.site("telemetry.noise");

    EXPECT_EQ(s.draw(7, 3, 1000), s.draw(7, 3, 1000));
    EXPECT_DOUBLE_EQ(s.gaussian(7, 3), s.gaussian(7, 3));
    EXPECT_NE(s.gaussian(7, 3), s.gaussian(8, 3));
    EXPECT_NE(s.gaussian(7, 3), s.gaussian(7, 4));
    for (uint64_t k = 0; k < 200; ++k)
        EXPECT_LT(s.draw(k, 0, 16), 16u);
}

TEST_F(FaultTest, FireCountTalliesAndResetsOnConfigure)
{
    auto &reg = FaultRegistry::instance();
    reg.configure("uc.deadline_miss:0.5", 7);
    const FaultSite &s = reg.site("uc.deadline_miss");
    EXPECT_EQ(s.fireCount(), 0u);

    uint64_t expect = 0;
    for (uint64_t k = 0; k < 500; ++k)
        expect += s.fires(k);
    EXPECT_GT(expect, 0u);
    EXPECT_EQ(s.fireCount(), expect);

    reg.configure("uc.deadline_miss:0.5", 7);
    EXPECT_EQ(s.fireCount(), 0u);
}

TEST_F(FaultTest, TelemetryStuckCounterZeroesTheVictimIndex)
{
    FaultRegistry::instance().configure(
        "telemetry.stuck_counter:1:2", seed_);
    std::vector<uint64_t> deltas{5, 6, 7, 8};
    EXPECT_FALSE(applyTelemetryFaults(deltas, 31));
    EXPECT_EQ(deltas, (std::vector<uint64_t>{5, 6, 0, 8}));
}

TEST_F(FaultTest, TelemetrySaturationWrapsOneCounter)
{
    FaultRegistry::instance().configure(
        "telemetry.saturation:1:4", seed_);
    std::vector<uint64_t> deltas(6, 1000);
    EXPECT_FALSE(applyTelemetryFaults(deltas, 5));
    size_t wrapped = 0;
    for (uint64_t d : deltas) {
        if (d == 1000)
            continue;
        ++wrapped;
        EXPECT_EQ(d, 1000u & 0xF); // wrapped at 2^4
    }
    EXPECT_EQ(wrapped, 1u);
}

TEST_F(FaultTest, TelemetryDropSignalsLostSnapshot)
{
    FaultRegistry::instance().configure(
        "telemetry.dropped_snapshot:1", seed_);
    std::vector<uint64_t> deltas{1, 2, 3};
    EXPECT_TRUE(applyTelemetryFaults(deltas, 0));
    // A drop leaves the (discarded) deltas untouched.
    EXPECT_EQ(deltas, (std::vector<uint64_t>{1, 2, 3}));
}

TEST_F(FaultTest, TelemetryNoiseIsDeterministicPerKey)
{
    FaultRegistry::instance().configure("telemetry.noise:1:0.1",
                                        seed_);
    std::vector<uint64_t> a{1000, 2000, 3000, 4000};
    std::vector<uint64_t> b = a;
    const std::vector<uint64_t> orig = a;
    applyTelemetryFaults(a, 17);
    applyTelemetryFaults(b, 17);
    EXPECT_EQ(a, b);       // same key: bit-identical corruption
    EXPECT_NE(a, orig);    // and it did corrupt something

    std::vector<uint64_t> c = orig;
    applyTelemetryFaults(c, 18);
    EXPECT_NE(a, c); // different key: different noise
}

TEST_F(FaultTest, DisabledRegistryLeavesTelemetryUntouched)
{
    ASSERT_FALSE(FaultRegistry::instance().anyEnabled());
    std::vector<uint64_t> deltas{9, 8, 7};
    EXPECT_FALSE(applyTelemetryFaults(deltas, 3));
    EXPECT_EQ(deltas, (std::vector<uint64_t>{9, 8, 7}));
}

namespace {

/** Gate-everything predictor for closed-loop fault runs. */
class AlwaysGate : public GatePredictor
{
  public:
    uint64_t granularity() const override { return 20000; }
    bool
    decide(const std::vector<const float *> &,
           const std::vector<float> &, CoreMode) override
    {
        return true;
    }
    uint32_t opsPerInference() const override { return 1; }
    std::string name() const override { return "always_gate"; }
};

Workload
faultMixWorkload()
{
    AppGenome g;
    g.name = "fault_mix";
    g.seed = 21;
    PhaseSpec gate, hungry;
    gate.kernel = {.kind = KernelKind::PointerChase,
                   .workingSetBytes = 16 << 20, .chains = 4};
    gate.weight = 0.5;
    gate.meanLenInstr = 120e3;
    hungry.kernel = {.kind = KernelKind::Ilp, .chains = 14};
    hungry.weight = 0.5;
    hungry.meanLenInstr = 120e3;
    g.phases = {gate, hungry};
    Workload w;
    w.genome = g;
    w.inputSeed = 3;
    w.lengthInstr = 400000;
    w.name = "fault_mix";
    return w;
}

/** The reference mix from DESIGN.md §10 (telemetry + firmware). */
constexpr const char *kReferenceMix =
    "telemetry.dropped_snapshot:0.2,telemetry.noise:0.1:0.05,"
    "telemetry.stuck_counter:0.1,uc.deadline_miss:0.2";

} // namespace

TEST_F(FaultTest, ClosedLoopSurvivesReferenceMixAndCountsDegradations)
{
    BuildConfig cfg;
    cfg.intervalInstr = 10000;
    cfg.warmupInstr = 20000;
    cfg.counterIds = {
        CounterRegistry::index(Ctr::InstRetired),
        CounterRegistry::index(Ctr::StallCount),
        CounterRegistry::index(Ctr::L1dMiss),
        CounterRegistry::index(Ctr::UopsStalledOnDep),
    };
    const Workload w = faultMixWorkload();
    const TraceRecord rec = recordTrace(w, cfg, 0, 0);

    // Fault-free guardrailed baseline.
    AlwaysGate clean_inner;
    GuardrailedPredictor clean(clean_inner);
    const ClosedLoopResult baseline =
        runClosedLoop(w, rec, clean, cfg, SlaSpec{});

    const uint64_t carry0 =
        counterValue("controller.snapshot_carryforwards");
    const uint64_t miss0 = counterValue("controller.deadline_misses");

    FaultRegistry::instance().configure(kReferenceMix, seed_);
    AlwaysGate faulted_inner;
    GuardrailedPredictor faulted(faulted_inner);
    const ClosedLoopResult degraded =
        runClosedLoop(w, rec, faulted, cfg, SlaSpec{});

    // The loop completed and the degradations were counted.
    EXPECT_GT(degraded.numPredictions, 0u);
    const uint64_t carried =
        counterValue("controller.snapshot_carryforwards") - carry0;
    const uint64_t missed =
        counterValue("controller.deadline_misses") - miss0;
    EXPECT_GT(carried, 0u);
    EXPECT_GT(missed, 0u);

    // Injections were tallied per site.
    const FaultSite &drop =
        FaultRegistry::instance().site("telemetry.dropped_snapshot");
    EXPECT_GT(drop.fireCount(), 0u);

    // Degraded-mode quality bound: the guardrailed loop under the
    // reference mix keeps RSV within 2x of the fault-free run.
    EXPECT_LE(degraded.rsv, 2.0 * baseline.rsv + 1e-9);

    // And the whole degraded run is deterministic: re-arming the
    // same mix at the same seed reproduces it bit for bit.
    FaultRegistry::instance().configure(kReferenceMix, seed_);
    AlwaysGate again_inner;
    GuardrailedPredictor again(again_inner);
    const ClosedLoopResult rerun =
        runClosedLoop(w, rec, again, cfg, SlaSpec{});
    EXPECT_EQ(degraded.numPredictions, rerun.numPredictions);
    EXPECT_EQ(degraded.modeSwitches, rerun.modeSwitches);
    EXPECT_DOUBLE_EQ(degraded.rsv, rerun.rsv);
    EXPECT_DOUBLE_EQ(degraded.ppwGainPct, rerun.ppwGainPct);
    EXPECT_DOUBLE_EQ(degraded.lowResidency, rerun.lowResidency);
}
