/**
 * @file
 * Bit-identity tests for the SIMD-batched kernels (DESIGN.md §14):
 * lockstep batched replay must reproduce the serial SoA replay's
 * counters, cycles, and interval stats exactly, and every model's
 * scoreBatch/predictBatch must match the scalar score/predict path
 * bitwise under whatever SIMD level is active (the scalar-fallback
 * CI job re-runs this binary with PSCA_SIMD=scalar).
 */

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "common/simd.hh"
#include "ml/linear.hh"
#include "ml/mlp.hh"
#include "ml/svm.hh"
#include "ml/tree.hh"
#include "sim/core.hh"
#include "trace/decoded.hh"
#include "trace/generator.hh"

using namespace psca;

namespace {

DecodedTrace
corpusTrace(AppCategory cat, uint64_t seed, uint64_t uops)
{
    Workload w;
    w.genome = sampleGenome(cat, seed);
    w.inputSeed = 1;
    w.lengthInstr = 1u << 30;
    w.name = "batched";
    TraceGenerator gen(w);
    return decodeTrace(gen, uops);
}

Dataset
syntheticDataset(size_t features, size_t samples, uint64_t seed)
{
    Dataset data;
    data.numFeatures = features;
    Rng rng(seed);
    std::vector<float> row(features);
    for (size_t i = 0; i < samples; ++i) {
        double sum = 0.0;
        for (auto &v : row) {
            v = static_cast<float>(rng.uniform() * 4.0 - 2.0);
            sum += v;
        }
        const uint8_t label = sum + rng.uniform() > 0.0 ? 1 : 0;
        data.addSample(row.data(), label,
                       static_cast<uint32_t>(i % 7),
                       static_cast<uint32_t>(i % 13));
    }
    return data;
}

/** Batched scores/decisions must equal the scalar path bitwise. */
void
expectBatchMatchesScalar(const Model &model, const Dataset &data)
{
    const int n = static_cast<int>(data.numSamples());
    std::vector<double> batch(static_cast<size_t>(n));
    model.scoreBatch(data.x.data(), n, batch.data());
    for (int i = 0; i < n; ++i) {
        const double scalar = model.score(data.row(
            static_cast<size_t>(i)));
        ASSERT_EQ(scalar, batch[static_cast<size_t>(i)])
            << model.describe() << " sample " << i;
    }

    std::vector<float> decisions(static_cast<size_t>(n));
    model.predictBatch(data.x.data(), n, decisions.data());
    for (int i = 0; i < n; ++i) {
        const bool pred = model.predict(data.row(
            static_cast<size_t>(i)));
        ASSERT_EQ(pred, decisions[static_cast<size_t>(i)] != 0.0f)
            << model.describe() << " sample " << i;
    }
}

} // namespace

TEST(BatchedReplay, BitIdenticalToSerialAcrossCorpus)
{
    constexpr uint64_t kInterval = 5000;
    constexpr uint64_t kIntervals = 8;
    constexpr uint64_t kUops = kInterval * kIntervals;
    const struct
    {
        AppCategory cat;
        uint64_t seed;
    } corpus[] = {
        {AppCategory::HpcPerf, 13},
        {AppCategory::HpcPerf, 29},
        {AppCategory::CloudSecurity, 7},
        {AppCategory::AiAnalytics, 3},
    };
    constexpr size_t kLanes = std::size(corpus);

    std::vector<DecodedTrace> traces;
    for (const auto &c : corpus)
        traces.push_back(corpusTrace(c.cat, c.seed, kUops));

    // Serial oracle: each trace replayed alone.
    std::vector<std::unique_ptr<ClusteredCore>> serial;
    std::vector<IntervalStats> serial_stats(kLanes);
    for (size_t i = 0; i < kLanes; ++i) {
        serial.push_back(std::make_unique<ClusteredCore>());
        serial[i]->reset();
        serial[i]->setMode(CoreMode::HighPerf);
        for (uint64_t t = 0; t < kIntervals; ++t)
            serial_stats[i] = serial[i]->run(
                traces[i], t * kInterval, kInterval);
    }

    // Batched: all four traces advance in lockstep.
    std::vector<std::unique_ptr<ClusteredCore>> batched;
    for (size_t i = 0; i < kLanes; ++i) {
        batched.push_back(std::make_unique<ClusteredCore>());
        batched[i]->reset();
        batched[i]->setMode(CoreMode::HighPerf);
    }
    std::vector<ReplayLane> lanes(kLanes);
    std::vector<IntervalStats> batch_stats(kLanes);
    for (uint64_t t = 0; t < kIntervals; ++t) {
        for (size_t i = 0; i < kLanes; ++i) {
            lanes[i].core = batched[i].get();
            lanes[i].trace = &traces[i];
            lanes[i].begin = t * kInterval;
            lanes[i].n = kInterval;
        }
        ClusteredCore::runBatch(lanes.data(), kLanes);
        for (size_t i = 0; i < kLanes; ++i)
            batch_stats[i] = lanes[i].stats;
    }

    for (size_t i = 0; i < kLanes; ++i) {
        EXPECT_EQ(serial_stats[i].instructions,
                  batch_stats[i].instructions)
            << "lane " << i;
        EXPECT_EQ(serial_stats[i].cycles, batch_stats[i].cycles)
            << "lane " << i;
        EXPECT_EQ(serial[i]->currentCycle(),
                  batched[i]->currentCycle())
            << "lane " << i;
        // Full telemetry vector, counter by counter.
        ASSERT_EQ(serial[i]->counters().raw(),
                  batched[i]->counters().raw())
            << "lane " << i;
    }
}

TEST(BatchedReplay, UnevenLanesCompactCorrectly)
{
    constexpr uint64_t kUops = 20000;
    const DecodedTrace trace =
        corpusTrace(AppCategory::HpcPerf, 21, kUops);
    const uint64_t lens[] = {1, 977, 5000, 20000};
    constexpr size_t kLanes = std::size(lens);

    std::vector<std::unique_ptr<ClusteredCore>> serial, batched;
    std::vector<ReplayLane> lanes(kLanes);
    for (size_t i = 0; i < kLanes; ++i) {
        serial.push_back(std::make_unique<ClusteredCore>());
        serial[i]->reset();
        serial[i]->setMode(CoreMode::HighPerf);
        batched.push_back(std::make_unique<ClusteredCore>());
        batched[i]->reset();
        batched[i]->setMode(CoreMode::HighPerf);
        lanes[i].core = batched[i].get();
        lanes[i].trace = &trace;
        lanes[i].begin = 0;
        lanes[i].n = lens[i];
    }
    ClusteredCore::runBatch(lanes.data(), kLanes);
    for (size_t i = 0; i < kLanes; ++i) {
        const IntervalStats want = serial[i]->run(trace, 0, lens[i]);
        EXPECT_EQ(want.instructions, lanes[i].stats.instructions)
            << "lane " << i;
        EXPECT_EQ(want.cycles, lanes[i].stats.cycles) << "lane " << i;
        ASSERT_EQ(serial[i]->counters().raw(),
                  batched[i]->counters().raw())
            << "lane " << i;
    }
}

TEST(PredictBatch, ForestMatchesScalar)
{
    const Dataset data = syntheticDataset(12, 403, 101);
    ForestConfig fc;
    fc.numTrees = 8;
    fc.maxDepth = 6;
    fc.seed = 5;
    RandomForest model(data, fc);
    model.setThreshold(0.55);
    expectBatchMatchesScalar(model, data);
}

TEST(PredictBatch, MlpMatchesScalar)
{
    const Dataset data = syntheticDataset(12, 403, 202);
    MlpConfig mc;
    mc.hiddenLayers = {8, 8, 4};
    mc.epochs = 5;
    mc.seed = 5;
    const auto model = trainMlp(data, mc);
    expectBatchMatchesScalar(*model, data);
}

TEST(PredictBatch, LogisticRegressionMatchesScalar)
{
    const Dataset data = syntheticDataset(12, 403, 303);
    LogRegConfig lc;
    LogisticRegression model(data, lc);
    expectBatchMatchesScalar(model, data);
}

TEST(PredictBatch, LinearSvmEnsembleMatchesScalar)
{
    const Dataset data = syntheticDataset(12, 403, 404);
    LinearSvmConfig sc;
    sc.epochs = 2;
    LinearSvmEnsemble model(data, sc);
    expectBatchMatchesScalar(model, data);
}

TEST(PredictBatch, Chi2SvmMatchesScalar)
{
    const Dataset data = syntheticDataset(12, 203, 505);
    Chi2SvmConfig sc;
    sc.maxSupportVectors = 64;
    sc.epochs = 1;
    Chi2Svm model(data, sc);
    expectBatchMatchesScalar(model, data);
}

TEST(PredictBatch, ForestBatchIsThreadSafe)
{
    // The flattened-forest cache builds lazily behind a once_flag;
    // concurrent first calls (as in parallel cross-validation) must
    // all see a complete table.
    const Dataset data = syntheticDataset(12, 512, 606);
    ForestConfig fc;
    fc.numTrees = 8;
    fc.maxDepth = 6;
    fc.seed = 9;
    RandomForest model(data, fc);

    const int n = static_cast<int>(data.numSamples());
    std::vector<std::vector<double>> results(
        4, std::vector<double>(static_cast<size_t>(n)));
    std::vector<std::thread> threads;
    for (auto &out : results)
        threads.emplace_back([&model, &data, n, &out] {
            model.scoreBatch(data.x.data(), n, out.data());
        });
    for (auto &t : threads)
        t.join();
    for (int i = 0; i < n; ++i) {
        const double want =
            model.score(data.row(static_cast<size_t>(i)));
        for (const auto &out : results)
            ASSERT_EQ(want, out[static_cast<size_t>(i)]);
    }
}

TEST(PredictBatch, ReportsActiveSimdLevel)
{
    // Sanity on the dispatch gates: the resolved level is one of the
    // two supported tokens, and PSCA_SIMD=scalar CI runs see scalar.
    const char *level = simd::levelName(simd::activeLevel());
    EXPECT_TRUE(std::string(level) == "avx2" ||
                std::string(level) == "scalar");
    const char *want = std::getenv("PSCA_SIMD");
    if (want && std::string(want) == "scalar")
        EXPECT_STREQ(level, "scalar");
}
