/**
 * @file
 * Tests for the MLP adaptation model: learning behaviour, Table 3
 * firmware cost accounting, and interface invariants.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ml/mlp.hh"

using namespace psca;

namespace {

/** Linearly separable 2D dataset. */
Dataset
linearData(size_t n, uint64_t seed)
{
    Rng rng(seed);
    Dataset d;
    d.numFeatures = 2;
    for (size_t i = 0; i < n; ++i) {
        const float x0 = static_cast<float>(rng.gaussian());
        const float x1 = static_cast<float>(rng.gaussian());
        const float row[2] = {x0, x1};
        d.addSample(row, x0 + x1 > 0.0f ? 1 : 0,
                    static_cast<uint32_t>(i % 7), 0);
    }
    return d;
}

/** XOR-style dataset (needs a hidden layer). */
Dataset
xorData(size_t n, uint64_t seed)
{
    Rng rng(seed);
    Dataset d;
    d.numFeatures = 2;
    for (size_t i = 0; i < n; ++i) {
        const float x0 = rng.bernoulli(0.5) ? 1.0f : -1.0f;
        const float x1 = rng.bernoulli(0.5) ? 1.0f : -1.0f;
        const float row[2] = {
            x0 + static_cast<float>(rng.gaussian(0, 0.1)),
            x1 + static_cast<float>(rng.gaussian(0, 0.1))};
        d.addSample(row, (x0 > 0) != (x1 > 0) ? 1 : 0, 0, 0);
    }
    return d;
}

double
accuracy(const Model &m, const Dataset &d)
{
    size_t correct = 0;
    for (size_t i = 0; i < d.numSamples(); ++i)
        correct += m.predict(d.row(i)) == (d.y[i] != 0) ? 1 : 0;
    return static_cast<double>(correct) /
        static_cast<double>(d.numSamples());
}

} // namespace

TEST(Mlp, LearnsLinearBoundary)
{
    const Dataset d = linearData(2000, 1);
    MlpConfig cfg;
    cfg.hiddenLayers = {8};
    cfg.epochs = 20;
    auto m = trainMlp(d, cfg);
    EXPECT_GT(accuracy(*m, d), 0.95);
}

TEST(Mlp, LearnsXor)
{
    const Dataset d = xorData(2000, 2);
    MlpConfig cfg;
    cfg.hiddenLayers = {8, 4};
    cfg.epochs = 60;
    cfg.learningRate = 1e-2;
    auto m = trainMlp(d, cfg);
    EXPECT_GT(accuracy(*m, d), 0.95);
}

TEST(Mlp, GeneralizesToHeldOut)
{
    const Dataset train = linearData(2000, 3);
    const Dataset test = linearData(500, 4);
    MlpConfig cfg;
    cfg.hiddenLayers = {8, 8, 4};
    cfg.epochs = 20;
    auto m = trainMlp(train, cfg);
    EXPECT_GT(accuracy(*m, test), 0.93);
}

TEST(Mlp, ScoreIsProbability)
{
    const Dataset d = linearData(500, 5);
    MlpConfig cfg;
    cfg.epochs = 5;
    auto m = trainMlp(d, cfg);
    for (size_t i = 0; i < 100; ++i) {
        const double s = m->score(d.row(i));
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 1.0);
    }
}

TEST(Mlp, DeterministicTraining)
{
    const Dataset d = linearData(500, 6);
    MlpConfig cfg;
    cfg.epochs = 5;
    cfg.seed = 9;
    auto a = trainMlp(d, cfg);
    auto b = trainMlp(d, cfg);
    for (size_t i = 0; i < 50; ++i)
        EXPECT_DOUBLE_EQ(a->score(d.row(i)), b->score(d.row(i)));
}

TEST(Mlp, ThresholdShiftsDecisions)
{
    const Dataset d = linearData(500, 7);
    MlpConfig cfg;
    cfg.epochs = 10;
    auto m = trainMlp(d, cfg);
    size_t gates_low = 0, gates_high = 0;
    m->setThreshold(0.2);
    for (size_t i = 0; i < d.numSamples(); ++i)
        gates_low += m->predict(d.row(i)) ? 1 : 0;
    m->setThreshold(0.8);
    for (size_t i = 0; i < d.numSamples(); ++i)
        gates_high += m->predict(d.row(i)) ? 1 : 0;
    EXPECT_GT(gates_low, gates_high);
}

// ---- Table 3 firmware cost accounting -------------------------------

struct MlpCostCase
{
    size_t inputs;
    std::vector<int> hidden;
    uint32_t paperOps;
};

class MlpCosts : public ::testing::TestWithParam<MlpCostCase>
{};

TEST_P(MlpCosts, MatchesPaperExactly)
{
    const auto &c = GetParam();
    MlpModel m(c.inputs, c.hidden, 1);
    EXPECT_EQ(m.opsPerInference(), c.paperOps);
}

INSTANTIATE_TEST_SUITE_P(
    Table3, MlpCosts,
    ::testing::Values(
        // 3 layers, 32/32/16 filters, 12 counters -> 6,162 ops.
        MlpCostCase{12, {32, 32, 16}, 6162},
        // 3 layers, 8/8/4 filters, 12 counters -> 678 ops.
        MlpCostCase{12, {8, 8, 4}, 678},
        // 1 layer, 10 filters, 8 counters (CHARSTAR) -> 292 ops.
        MlpCostCase{8, {10}, 292}));

TEST(Mlp, MemoryFootprintCountsParameters)
{
    MlpModel m(12, {8, 8, 4}, 1);
    // (12*8+8) + (8*8+8) + (8*4+4) + (4*1+1) parameters * 4 bytes.
    const size_t params = (12 * 8 + 8) + (8 * 8 + 8) + (8 * 4 + 4) +
        (4 * 1 + 1);
    EXPECT_EQ(m.memoryFootprintBytes(), params * 4);
}

TEST(Mlp, DescribeNamesTopology)
{
    MlpModel m(12, {8, 8, 4}, 1);
    EXPECT_EQ(m.describe(), "MLP 8/8/4");
}
