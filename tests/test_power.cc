/**
 * @file
 * Tests for the event-based power model and the PPW accumulator,
 * including the paper's ~35% low-power saving (Sec. 3).
 */

#include <gtest/gtest.h>

#include "power/power_model.hh"
#include "sim/core.hh"
#include "trace/corpus.hh"

using namespace psca;

namespace {

Workload
kernelWorkload(KernelParams kp)
{
    AppGenome g;
    g.name = "pw";
    g.seed = 7;
    PhaseSpec p;
    p.kernel = kp;
    p.meanLenInstr = 1e9;
    g.phases = {p};
    Workload w;
    w.genome = g;
    w.inputSeed = 1;
    w.lengthInstr = 300000;
    w.name = "pw";
    return w;
}

double
powerOf(const Workload &w, CoreMode mode)
{
    ClusteredCore core;
    core.reset();
    core.setMode(mode);
    PowerModel pm;
    TraceGenerator gen(w);
    core.run(gen, 60000);
    const auto before = core.counters().raw();
    const uint64_t c0 = core.currentCycle();
    core.run(gen, 150000);
    const auto after = core.counters().raw();
    std::vector<uint64_t> delta(after.size());
    for (size_t i = 0; i < delta.size(); ++i)
        delta[i] = after[i] - before[i];
    return pm.intervalPowerWatts(delta, core.currentCycle() - c0, mode);
}

} // namespace

TEST(Power, EnergyIsPositive)
{
    Counters c;
    c.inc(Ctr::UopsIssuedTotal, 10000);
    PowerModel pm;
    EXPECT_GT(pm.intervalEnergyNj(c.raw(), 5000, CoreMode::HighPerf),
              0.0);
}

TEST(Power, StaticPowerDominatesIdle)
{
    Counters c;
    PowerModel pm;
    const double high =
        pm.intervalPowerWatts(c.raw(), 10000, CoreMode::HighPerf);
    const double low =
        pm.intervalPowerWatts(c.raw(), 10000, CoreMode::LowPower);
    PowerModelConfig cfg;
    EXPECT_NEAR(high, cfg.staticHighPerf, 1e-9);
    EXPECT_NEAR(low, cfg.staticLowPower, 1e-9);
}

TEST(Power, MoreEventsMorePower)
{
    Counters a, b;
    a.inc(Ctr::UopsIssuedTotal, 1000);
    b.inc(Ctr::UopsIssuedTotal, 50000);
    PowerModel pm;
    EXPECT_LT(pm.intervalPowerWatts(a.raw(), 10000, CoreMode::HighPerf),
              pm.intervalPowerWatts(b.raw(), 10000,
                                    CoreMode::HighPerf));
}

class PowerSavingKernels
    : public ::testing::TestWithParam<KernelParams>
{};

TEST_P(PowerSavingKernels, LowPowerSavesPower)
{
    const Workload w = kernelWorkload(GetParam());
    const double high = powerOf(w, CoreMode::HighPerf);
    const double low = powerOf(w, CoreMode::LowPower);
    EXPECT_LT(low, high);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, PowerSavingKernels,
    ::testing::Values(
        KernelParams{.kind = KernelKind::Ilp, .chains = 12},
        KernelParams{.kind = KernelKind::Ilp, .chains = 3},
        KernelParams{.kind = KernelKind::PointerChase,
                     .workingSetBytes = 32 << 20},
        KernelParams{.kind = KernelKind::Stream,
                     .workingSetBytes = 64 << 20, .computePerElem = 2},
        KernelParams{.kind = KernelKind::Branchy,
                     .workingSetBytes = 1 << 20},
        KernelParams{.kind = KernelKind::FpSerial, .fp = true}));

TEST(Power, AverageSavingNearPaper35Percent)
{
    // Across a kernel mix, low-power mode should average roughly 35%
    // less power than high-performance mode (Sec. 3).
    const KernelParams mix[] = {
        {.kind = KernelKind::Ilp, .chains = 12},
        {.kind = KernelKind::Ilp, .chains = 3},
        {.kind = KernelKind::PointerChase, .workingSetBytes = 16 << 20},
        {.kind = KernelKind::Stream, .workingSetBytes = 64 << 20,
         .computePerElem = 2, .fp = true},
        {.kind = KernelKind::Stencil, .workingSetBytes = 8 << 20},
        {.kind = KernelKind::Branchy, .workingSetBytes = 512 << 10},
        {.kind = KernelKind::FpSerial, .fp = true},
    };
    double ratio_sum = 0.0;
    for (const auto &kp : mix) {
        const Workload w = kernelWorkload(kp);
        ratio_sum += powerOf(w, CoreMode::LowPower) /
            powerOf(w, CoreMode::HighPerf);
    }
    const double avg_saving = 1.0 - ratio_sum / std::size(mix);
    EXPECT_NEAR(avg_saving, 0.35, 0.08);
}

TEST(PpwAccumulator, Arithmetic)
{
    PpwAccumulator acc;
    acc.add(1000, 500, 2000.0);
    acc.add(1000, 500, 2000.0);
    EXPECT_EQ(acc.instructions(), 2000u);
    EXPECT_EQ(acc.cycles(), 1000u);
    EXPECT_DOUBLE_EQ(acc.ipc(), 2.0);
    // 2000 instructions / 4000 nJ = 5e8 instructions per joule.
    EXPECT_NEAR(acc.ppw(), 2000.0 / (4000e-9), 1.0);
}

TEST(PpwAccumulator, EmptyIsZero)
{
    PpwAccumulator acc;
    EXPECT_DOUBLE_EQ(acc.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(acc.ppw(), 0.0);
}
