/**
 * @file
 * Tests for the sliding-window bandwidth accounting.
 */

#include <gtest/gtest.h>

#include "sim/bandwidth.hh"

using namespace psca;

TEST(BandwidthRing, CapacityPerCycle)
{
    BandwidthRing ring(2);
    EXPECT_EQ(ring.reserve(10), 10u);
    EXPECT_EQ(ring.reserve(10), 10u);
    EXPECT_EQ(ring.reserve(10), 11u); // third goes to the next cycle
}

TEST(BandwidthRing, OutOfOrderReservations)
{
    BandwidthRing ring(1);
    EXPECT_EQ(ring.reserve(100), 100u);
    EXPECT_EQ(ring.reserve(50), 50u); // older slot still free
    EXPECT_EQ(ring.reserve(50), 51u);
}

TEST(BandwidthRing, GranularityGroupsCycles)
{
    BandwidthRing ring(1, 2); // one slot per 4 cycles
    const uint64_t a = ring.reserve(0);
    const uint64_t b = ring.reserve(0);
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 4u);
    EXPECT_EQ(ring.reserve(9), 8u); // slot of period [8,11]
}

TEST(BandwidthRing, ResetClears)
{
    BandwidthRing ring(1);
    ring.reserve(5);
    ring.reset();
    EXPECT_EQ(ring.reserve(5), 5u);
}

TEST(BandwidthRing, UsageAt)
{
    BandwidthRing ring(3);
    ring.reserve(20);
    ring.reserve(20);
    EXPECT_EQ(ring.usageAt(20), 2);
    EXPECT_EQ(ring.usageAt(21), 0);
}

TEST(BandwidthRing, SetCapacity)
{
    BandwidthRing ring(4);
    ring.setCapacity(1);
    EXPECT_EQ(ring.reserve(7), 7u);
    EXPECT_EQ(ring.reserve(7), 8u);
}

TEST(BandwidthRing, SustainedThroughputMatchesCapacity)
{
    BandwidthRing ring(4);
    uint64_t last = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i)
        last = ring.reserve(0);
    // 4000 reservations at 4/cycle starting at 0 -> last lands at 999.
    EXPECT_EQ(last, static_cast<uint64_t>(n / 4 - 1));
}

TEST(BandwidthRing, FarFutureJumpClearsWindow)
{
    BandwidthRing ring(1, 0, 4); // tiny 16-entry window
    for (int i = 0; i < 16; ++i)
        ring.reserve(0);
    // Jump far beyond the window; all slots must read free again.
    EXPECT_EQ(ring.reserve(1000), 1000u);
    EXPECT_EQ(ring.reserve(1000), 1001u);
}

TEST(BandwidthRing, TooOldClampsToWindow)
{
    BandwidthRing ring(1, 0, 4);
    ring.reserve(100); // horizon at 100
    // A request far older than the window cannot be tracked; it is
    // clamped into the window rather than mis-read stale state.
    const uint64_t got = ring.reserve(2);
    EXPECT_GE(got, 100u - 15u);
}
