/**
 * @file
 * Tests for mergeable stat snapshots (obs/snapshot.hh): shard merges
 * are commutative/associative and reproduce the single-registry
 * report byte for byte (including histogram percentiles and exact
 * integer moments), the binary codec round-trips through disk, and
 * corruption is detected rather than deserialized.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "obs/snapshot.hh"
#include "obs/stats.hh"

using namespace psca;
using obs::Histogram;
using obs::StatRegistry;
using obs::StatSnapshot;

namespace {

std::string
jsonOf(const StatSnapshot &snap)
{
    std::ostringstream os;
    snap.writeJson(os, "shard_merge_test");
    return os.str();
}

/**
 * Record a deterministic workload into @p reg; when @p shards is
 * non-null, each sample also lands in one of the shard registries
 * (round-robin), so merging the shards must reproduce @p reg.
 */
void
recordWorkload(StatRegistry &reg, std::vector<StatRegistry> *shards)
{
    Rng rng(0x5eedULL);
    for (size_t i = 0; i < 4000; ++i) {
        StatRegistry *shard =
            shards ? &(*shards)[i % shards->size()] : nullptr;
        const uint64_t v = rng.below(1u << 20);
        reg.histogram("work.latency_ns").add(v);
        if (shard)
            shard->histogram("work.latency_ns").add(v);
        const uint64_t small = rng.below(7);
        reg.histogram("work.batch").add(small);
        if (shard)
            shard->histogram("work.batch").add(small);
        reg.counter("work.items").add();
        if (shard)
            shard->counter("work.items").add();
        if (i % 3 == 0) {
            reg.counter("work.retries").add(2);
            if (shard)
                shard->counter("work.retries").add(2);
        }
    }
    // Gauges merge by max: give every shard the same configuration
    // value (the common case: shards agree on run parameters).
    reg.gauge("work.threads").set(4.0);
    if (shards) {
        for (auto &s : *shards)
            s.gauge("work.threads").set(4.0);
    }
}

} // namespace

TEST(SnapshotMerge, AllMergeOrdersAreByteIdentical)
{
    StatRegistry reference;
    std::vector<StatRegistry> shards(4);
    recordWorkload(reference, &shards);

    StatSnapshot want;
    want.capture(reference);
    const std::string want_json = jsonOf(want);
    // The workload must exercise the nontrivial report fields.
    EXPECT_NE(want_json.find("\"p50\""), std::string::npos);
    EXPECT_NE(want_json.find("\"p95\""), std::string::npos);
    EXPECT_NE(want_json.find("\"p99\""), std::string::npos);
    EXPECT_NE(want_json.find("\"stddev\""), std::string::npos);

    std::vector<StatSnapshot> parts(4);
    for (size_t i = 0; i < parts.size(); ++i)
        parts[i].capture(shards[i]);

    std::vector<size_t> order = {0, 1, 2, 3};
    size_t permutations = 0;
    do {
        StatSnapshot merged;
        for (size_t idx : order)
            merged.merge(parts[idx]);
        EXPECT_EQ(jsonOf(merged), want_json)
            << "merge order " << order[0] << order[1] << order[2]
            << order[3];
        ++permutations;
    } while (std::next_permutation(order.begin(), order.end()));
    EXPECT_EQ(permutations, 24u);
}

TEST(SnapshotMerge, FourThreadRunPartitionedByNameMerges)
{
    // A 4-thread recording into one registry, then partitioned stat-
    // by-stat into 4 shard snapshots and merged back in shuffled
    // order: the distributed-aggregation path a coordinator uses.
    ThreadPool::configure(4);
    StatRegistry reg;
    ThreadPool::instance().parallelFor(64, [&](size_t i) {
        Rng rng(taskSeed(0xabcdULL, i));
        for (int k = 0; k < 100; ++k) {
            reg.histogram("fold.latency_ns").add(rng.below(1u << 16));
            reg.counter("fold.samples").add();
        }
        reg.counter("fold.done").add();
    });

    StatSnapshot full;
    full.capture(reg);
    const std::string want = jsonOf(full);

    StatSnapshot parts[4];
    size_t slot = 0;
    for (const auto &kv : full.counters)
        parts[slot++ % 4].counters.insert(kv);
    for (const auto &kv : full.gauges)
        parts[slot++ % 4].gauges.insert(kv);
    for (const auto &kv : full.histograms)
        parts[slot++ % 4].histograms.insert(kv);

    StatSnapshot merged;
    for (size_t idx : {2, 0, 3, 1})
        merged.merge(parts[idx]);
    EXPECT_EQ(jsonOf(merged), want);
}

TEST(SnapshotMerge, HistogramMomentsMergeExactly)
{
    // The exact-integer moment sums make the merged mean/variance
    // equal (==, not nearly) whichever shard each sample landed in.
    Histogram all;
    Histogram a, b;
    Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
        const uint64_t v = rng.below(1ULL << 30);
        all.add(v);
        (i % 2 ? a : b).add(v);
    }
    obs::HistogramSnapshot ab = a.snapshot();
    ab.merge(b.snapshot());
    obs::HistogramSnapshot ba = b.snapshot();
    ba.merge(a.snapshot());

    const obs::HistogramSnapshot want = all.snapshot();
    for (const auto *got : {&ab, &ba}) {
        EXPECT_EQ(got->count, want.count);
        EXPECT_EQ(got->min, want.min);
        EXPECT_EQ(got->max, want.max);
        EXPECT_EQ(got->mean(), want.mean());
        EXPECT_EQ(got->variance(), want.variance());
        EXPECT_EQ(got->stddev(), want.stddev());
        for (double p : {50.0, 95.0, 99.0})
            EXPECT_EQ(got->percentile(p), want.percentile(p));
    }
}

TEST(SnapshotMerge, EmptyShardIsIdentity)
{
    Histogram h;
    h.add(5);
    h.add(500);
    obs::HistogramSnapshot got = h.snapshot();
    got.merge(obs::HistogramSnapshot{}); // empty: min=MAX, max=0
    const obs::HistogramSnapshot want = h.snapshot();
    EXPECT_EQ(got.count, want.count);
    EXPECT_EQ(got.min, want.min);
    EXPECT_EQ(got.max, want.max);
    EXPECT_EQ(got.mean(), want.mean());
}

TEST(SnapshotMerge, GaugesTakeMax)
{
    StatSnapshot a, b;
    a.gauges["g"] = 2.5;
    b.gauges["g"] = 7.0;
    b.gauges["only_b"] = -1.0;
    StatSnapshot m1 = a;
    m1.merge(b);
    StatSnapshot m2 = b;
    m2.merge(a);
    EXPECT_EQ(m1.gauges["g"], 7.0);
    EXPECT_EQ(m2.gauges["g"], 7.0);
    EXPECT_EQ(m1.gauges["only_b"], -1.0);
    EXPECT_EQ(jsonOf(m1), jsonOf(m2));
}

TEST(SnapshotCodec, FileRoundTripIsExact)
{
    StatRegistry reg;
    recordWorkload(reg, nullptr);
    StatSnapshot snap;
    snap.capture(reg);

    const std::string path = "/tmp/psca_snapshot_test.bin";
    ASSERT_TRUE(snap.writeFile(path));

    StatSnapshot back;
    ASSERT_TRUE(back.readFile(path));
    EXPECT_EQ(jsonOf(back), jsonOf(snap));
    std::remove(path.c_str());
}

TEST(SnapshotCodec, CorruptionIsRejected)
{
    StatRegistry reg;
    recordWorkload(reg, nullptr);
    StatSnapshot snap;
    snap.capture(reg);

    const std::string path = "/tmp/psca_snapshot_corrupt_test.bin";
    ASSERT_TRUE(snap.writeFile(path));

    // Flip one byte mid-payload: the checksum trailer must catch it.
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekg(0, std::ios::end);
        const auto size = static_cast<long long>(f.tellg());
        ASSERT_GT(size, 64);
        f.seekp(size / 2);
        char c = 0;
        f.seekg(size / 2);
        f.read(&c, 1);
        c = static_cast<char>(c ^ 0x40);
        f.seekp(size / 2);
        f.write(&c, 1);
    }
    StatSnapshot back;
    back.counters["stale"] = 1; // must be cleared by the failure
    EXPECT_FALSE(back.readFile(path));
    EXPECT_TRUE(back.counters.empty());
    EXPECT_TRUE(back.histograms.empty());

    // A missing file is also a clean failure.
    std::remove(path.c_str());
    EXPECT_FALSE(back.readFile(path));
}
