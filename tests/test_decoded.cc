/**
 * @file
 * Tests for the pre-decoded SoA trace representation and the
 * simulator hot path built on it: decode fidelity against the AoS
 * stream, content-hash stability, bit-identity of the SoA replay
 * against the retired AoS oracle (cycles, every telemetry counter,
 * and gating labels across the genome corpus), and the
 * steady-state allocation budget of the replay loop.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "sim/core.hh"
#include "trace/decoded.hh"
#include "trace/generator.hh"
#include "trace/genome.hh"

// ---------------------------------------------------------------------
// Counting global allocator: every operator new in the binary bumps
// the counter while auditing is armed. malloc-backed so behaviour is
// otherwise unchanged.
namespace {

std::atomic<bool> g_audit{false};
std::atomic<uint64_t> g_allocs{0};

void *
countedAlloc(std::size_t n)
{
    if (g_audit.load(std::memory_order_relaxed))
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

} // namespace

void *operator new(std::size_t n) { return countedAlloc(n); }
void *operator new[](std::size_t n) { return countedAlloc(n); }
void operator delete(void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

using namespace psca;

namespace {

Workload
categoryWorkload(AppCategory cat, uint64_t seed, uint64_t len)
{
    Workload w;
    w.genome = sampleGenome(cat, seed);
    w.inputSeed = 1;
    w.lengthInstr = len;
    w.name = w.genome.name;
    return w;
}

/** Fields of one op, comparable across representations. */
void
expectOpEq(const MicroOp &a, const MicroOp &b, size_t i)
{
    EXPECT_EQ(a.pc, b.pc) << "op " << i;
    EXPECT_EQ(a.addr, b.addr) << "op " << i;
    EXPECT_EQ(a.cls, b.cls) << "op " << i;
    EXPECT_EQ(a.dst, b.dst) << "op " << i;
    EXPECT_EQ(a.src0, b.src0) << "op " << i;
    EXPECT_EQ(a.src1, b.src1) << "op " << i;
    EXPECT_EQ(a.branchTaken, b.branchTaken) << "op " << i;
}

} // namespace

TEST(DecodedTrace, FillDecodedMatchesFill)
{
    const Workload w =
        categoryWorkload(AppCategory::Multimedia, 5, 1 << 20);
    TraceGenerator aos_gen(w);
    TraceGenerator soa_gen(w);

    constexpr size_t kOps = 50000;
    std::vector<MicroOp> aos;
    aos_gen.fill(aos, kOps);

    // Deliberately odd chunk size: stream content must not depend on
    // how the decode is chunked.
    DecodedTrace trace;
    while (trace.size() < kOps)
        soa_gen.fillDecoded(trace, 999);

    ASSERT_GE(trace.size(), kOps);
    for (size_t i = 0; i < kOps; ++i)
        expectOpEq(trace.opAt(i), aos[i], i);
}

TEST(DecodedTrace, BatchAppendMatchesSingle)
{
    const Workload w =
        categoryWorkload(AppCategory::GamesRendering, 9, 1 << 20);
    TraceGenerator gen(w);
    std::vector<MicroOp> ops;
    gen.fill(ops, 4096);

    DecodedTrace batch;
    batch.append(ops.data(), ops.size());
    DecodedTrace single;
    for (const MicroOp &op : ops)
        single.append(op);

    ASSERT_EQ(batch.size(), single.size());
    EXPECT_EQ(batch.contentHash(), single.contentHash());
    for (size_t i = 0; i < ops.size(); ++i)
        expectOpEq(batch.opAt(i), single.opAt(i), i);
}

TEST(DecodedTrace, ContentHashStableAndDiscriminating)
{
    const Workload w =
        categoryWorkload(AppCategory::AiAnalytics, 3, 1 << 20);

    TraceGenerator g1(w);
    TraceGenerator g2(w);
    const DecodedTrace a = decodeTrace(g1, 30000);
    DecodedTrace b;
    while (b.size() < 30000)
        g2.fillDecoded(b,
                       std::min<uint64_t>(777, 30000 - b.size()));
    ASSERT_EQ(b.size(), 30000u);
    EXPECT_EQ(a.contentHash(), b.contentHash());

    Workload other = w;
    other.inputSeed = 2;
    TraceGenerator g3(other);
    const DecodedTrace c = decodeTrace(g3, 30000);
    EXPECT_NE(a.contentHash(), c.contentHash());

    // Length matters too.
    TraceGenerator g4(w);
    const DecodedTrace d = decodeTrace(g4, 29999);
    EXPECT_NE(a.contentHash(), d.contentHash());
}

// ---------------------------------------------------------------------
// SoA replay vs AoS oracle: the refactor's contract is bit-identity.

class SoaVsAos : public ::testing::TestWithParam<AppCategory>
{};

TEST_P(SoaVsAos, CountersBitIdenticalBothModes)
{
    const Workload w = categoryWorkload(GetParam(), 17, 1 << 22);
    for (CoreMode mode : {CoreMode::HighPerf, CoreMode::LowPower}) {
        ClusteredCore soa;
        soa.reset();
        soa.setMode(mode);
        ASSERT_EQ(soa.replayPath(), ReplayPath::Soa);
        TraceGenerator soa_gen(w);

        ClusteredCore aos;
        aos.reset();
        aos.setMode(mode);
        aos.setReplayPath(ReplayPath::AosOracle);
        TraceGenerator aos_gen(w);

        for (int t = 0; t < 6; ++t) {
            soa.run(soa_gen, 10000);
            aos.run(aos_gen, 10000);
        }
        EXPECT_EQ(soa.currentCycle(), aos.currentCycle());
        EXPECT_EQ(soa.counters().raw(), aos.counters().raw());
    }
}

TEST_P(SoaVsAos, GatingLabelsIdentical)
{
    // The ground-truth labels everything downstream trains on:
    // per-interval IPC_low/IPC_high >= pSLA, computed once per path.
    const Workload w = categoryWorkload(GetParam(), 23, 1 << 22);
    constexpr int kIntervals = 8;
    constexpr double kPsla = 0.90;

    auto labels = [&](ReplayPath path) {
        std::vector<uint64_t> cycles_high, cycles_low;
        for (CoreMode mode :
             {CoreMode::HighPerf, CoreMode::LowPower}) {
            ClusteredCore core;
            core.reset();
            core.setMode(mode);
            core.setReplayPath(path);
            TraceGenerator gen(w);
            core.run(gen, 20000); // warm
            for (int t = 0; t < kIntervals; ++t) {
                const IntervalStats s = core.run(gen, 10000);
                (mode == CoreMode::HighPerf ? cycles_high
                                            : cycles_low)
                    .push_back(s.cycles);
            }
        }
        std::vector<uint8_t> y(kIntervals);
        for (int t = 0; t < kIntervals; ++t)
            y[t] = static_cast<double>(cycles_high[t]) /
                        static_cast<double>(cycles_low[t]) >=
                    kPsla
                ? 1
                : 0;
        return y;
    };

    EXPECT_EQ(labels(ReplayPath::Soa), labels(ReplayPath::AosOracle));
}

INSTANTIATE_TEST_SUITE_P(
    GenomeCorpus, SoaVsAos,
    ::testing::Values(AppCategory::HpcPerf, AppCategory::CloudSecurity,
                      AppCategory::AiAnalytics,
                      AppCategory::WebProductivity,
                      AppCategory::Multimedia,
                      AppCategory::GamesRendering));

TEST(DecodedTrace, PreDecodedReplayMatchesGenDriven)
{
    // The builder's pure-replay overload must retire the same stream
    // the incremental gen-driven path does.
    const Workload w =
        categoryWorkload(AppCategory::AiAnalytics, 29, 1 << 22);
    constexpr uint64_t kTotal = 80000;

    ClusteredCore inc;
    inc.reset();
    TraceGenerator inc_gen(w);
    for (uint64_t done = 0; done < kTotal; done += 10000)
        inc.run(inc_gen, 10000);

    TraceGenerator dec_gen(w);
    const DecodedTrace trace = decodeTrace(dec_gen, kTotal);
    ClusteredCore rep;
    rep.reset();
    for (uint64_t base = 0; base < kTotal; base += 10000)
        rep.run(trace, base, 10000);

    EXPECT_EQ(inc.currentCycle(), rep.currentCycle());
    EXPECT_EQ(inc.counters().raw(), rep.counters().raw());
}

TEST(DecodedTrace, SteadyStateReplayAllocationBudget)
{
    // The reserve() audit: after warmup, neither the gen-driven SoA
    // path nor the pre-decoded replay may allocate per interval
    // (single-phase kernel, so the generator reaches steady state).
    AppGenome g;
    g.name = "alloc_audit";
    g.seed = 7;
    PhaseSpec p;
    p.kernel = {.kind = KernelKind::Stream,
                .workingSetBytes = 1 << 20, .computePerElem = 2};
    p.meanLenInstr = 1e9;
    g.phases = {p};
    Workload w;
    w.genome = g;
    w.inputSeed = 1;
    w.lengthInstr = 1 << 22;
    w.name = "alloc_audit";

    ClusteredCore core;
    core.reset();
    TraceGenerator gen(w);
    for (int t = 0; t < 3; ++t)
        core.run(gen, 10000); // warm: buffers reach final capacity

    g_allocs.store(0);
    g_audit.store(true);
    for (int t = 0; t < 10; ++t)
        core.run(gen, 10000);
    g_audit.store(false);
    EXPECT_LE(g_allocs.load(), 16u)
        << "gen-driven replay allocates in steady state";

    TraceGenerator dec_gen(w);
    const DecodedTrace trace = decodeTrace(dec_gen, 120000);
    core.run(trace, 0, 10000); // warm

    g_allocs.store(0);
    g_audit.store(true);
    for (uint64_t base = 10000; base + 10000 <= trace.size();
         base += 10000)
        core.run(trace, base, 10000);
    g_audit.store(false);
    EXPECT_EQ(g_allocs.load(), 0u)
        << "pre-decoded replay allocates in steady state";
}
