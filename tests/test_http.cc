/**
 * @file
 * Tests for the embedded live-stats HTTP endpoint (obs/http.hh): an
 * ephemeral-port server answers /stats.json, /events, /phases, and
 * the index with well-formed JSON, rejects unknown paths and non-GET
 * methods, and stops cleanly (including restart).
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "common/logging.hh"
#include "obs/http.hh"
#include "obs/phase.hh"
#include "obs/stats.hh"

using namespace psca;
using obs::HttpServer;

namespace {

/** One blocking HTTP exchange against 127.0.0.1:port. */
std::string
httpRequest(int port, const std::string &request_head)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
    {
        ::close(fd);
        return "";
    }
    ::send(fd, request_head.data(), request_head.size(), 0);
    std::string resp;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        resp.append(buf, static_cast<size_t>(n));
    ::close(fd);
    return resp;
}

std::string
httpGet(int port, const std::string &path)
{
    return httpRequest(port,
                       "GET " + path + " HTTP/1.0\r\n\r\n");
}

} // namespace

TEST(HttpEndpoint, ServesLiveTelemetry)
{
    // Give the live views something to show.
    obs::StatRegistry::instance().counter("http_test.counter").add(3);
    emitEvent("http_test", LogLevel::Info, "endpoint test event");

    HttpServer &server = HttpServer::instance();
    ASSERT_TRUE(server.start(0)); // ephemeral port
    const int port = server.port();
    ASSERT_GT(port, 0);
    EXPECT_TRUE(server.running());

    {
        // An open scope while we query /phases: the live view lists it.
        obs::ScopedPhase phase("http_test.live_scope");

        const std::string stats = httpGet(port, "/stats.json");
        EXPECT_NE(stats.find("HTTP/1.0 200 OK"), std::string::npos);
        EXPECT_NE(stats.find("Content-Type: application/json"),
                  std::string::npos);
        EXPECT_NE(stats.find("\"report\": \"live\""),
                  std::string::npos);
        EXPECT_NE(stats.find("\"http_test.counter\": 3"),
                  std::string::npos);

        const std::string events = httpGet(port, "/events");
        EXPECT_NE(events.find("200 OK"), std::string::npos);
        EXPECT_NE(events.find("\"report\": \"events\""),
                  std::string::npos);
        EXPECT_NE(events.find("endpoint test event"),
                  std::string::npos);

        const std::string phases = httpGet(port, "/phases");
        EXPECT_NE(phases.find("200 OK"), std::string::npos);
        EXPECT_NE(phases.find("\"report\": \"phases\""),
                  std::string::npos);
        EXPECT_NE(phases.find("\"open\": ["), std::string::npos);
        EXPECT_NE(phases.find("http_test.live_scope"),
                  std::string::npos);
    }

    const std::string index = httpGet(port, "/");
    EXPECT_NE(index.find("/stats.json"), std::string::npos);

    const std::string missing = httpGet(port, "/nope");
    EXPECT_NE(missing.find("404 Not Found"), std::string::npos);

    const std::string post =
        httpRequest(port, "POST /stats.json HTTP/1.0\r\n\r\n");
    EXPECT_NE(post.find("405 Method Not Allowed"), std::string::npos);

    // Requests were counted (registered only while the endpoint is on).
    const auto *requests = obs::StatRegistry::instance().findCounter(
        "http.requests");
    ASSERT_NE(requests, nullptr);
    EXPECT_GE(requests->value(), 6u);

    server.stop();
    EXPECT_FALSE(server.running());
    EXPECT_EQ(server.port(), 0);
}

TEST(HttpEndpoint, RestartAfterStop)
{
    HttpServer &server = HttpServer::instance();
    ASSERT_TRUE(server.start(0));
    const int port = server.port();
    EXPECT_NE(httpGet(port, "/").find("200 OK"), std::string::npos);
    // Starting twice fails loudly instead of double-binding.
    EXPECT_FALSE(server.start(0));
    server.stop();
    server.stop(); // idempotent
}

TEST(HttpEndpoint, BadBindAddressFails)
{
    HttpServer &server = HttpServer::instance();
    EXPECT_FALSE(server.start(0, "not-an-address"));
    EXPECT_FALSE(server.running());
}
