/**
 * @file
 * Tests for app-level cross-validation splitting, model evaluation,
 * and sensitivity calibration.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "core/crossval.hh"
#include "ml/mlp.hh"
#include "ml/tree.hh"

using namespace psca;

namespace {

/** Dataset with per-app feature shifts so leakage is measurable. */
Dataset
groupedData(size_t apps, size_t per_app, uint64_t seed)
{
    Rng rng(seed);
    Dataset d;
    d.numFeatures = 3;
    for (size_t a = 0; a < apps; ++a) {
        for (size_t i = 0; i < per_app; ++i) {
            float row[3];
            for (auto &v : row)
                v = static_cast<float>(rng.gaussian());
            d.addSample(row, row[0] + row[1] > 0 ? 1 : 0,
                        static_cast<uint32_t>(a),
                        static_cast<uint32_t>(a * 10 + i % 3));
        }
    }
    return d;
}

} // namespace

TEST(AppSplit, AppsNeverStraddle)
{
    const Dataset d = groupedData(20, 30, 1);
    const FoldSplit split = appLevelSplit(d, 0.8, 42);
    std::set<uint32_t> tune_apps, valid_apps;
    for (size_t i : split.tuneIdx)
        tune_apps.insert(d.appId[i]);
    for (size_t i : split.validIdx)
        valid_apps.insert(d.appId[i]);
    for (uint32_t a : tune_apps)
        EXPECT_EQ(valid_apps.count(a), 0u);
    EXPECT_EQ(split.tuneIdx.size() + split.validIdx.size(),
              d.numSamples());
}

TEST(AppSplit, TuneFractionApproximate)
{
    const Dataset d = groupedData(50, 10, 2);
    const FoldSplit split = appLevelSplit(d, 0.8, 7);
    EXPECT_NEAR(static_cast<double>(split.tuneIdx.size()) /
                    static_cast<double>(d.numSamples()),
                0.8, 0.1);
}

TEST(AppSplit, MaxTuneAppsCapsDiversity)
{
    // The Fig. 4 knob: limit the number of tuning applications.
    const Dataset d = groupedData(40, 10, 3);
    const FoldSplit split = appLevelSplit(d, 0.8, 7, 5);
    std::set<uint32_t> tune_apps;
    for (size_t i : split.tuneIdx)
        tune_apps.insert(d.appId[i]);
    EXPECT_EQ(tune_apps.size(), 5u);
}

TEST(AppSplit, DifferentSeedsDifferentFolds)
{
    const Dataset d = groupedData(20, 10, 4);
    const FoldSplit a = appLevelSplit(d, 0.8, 1);
    const FoldSplit b = appLevelSplit(d, 0.8, 2);
    EXPECT_NE(a.tuneIdx, b.tuneIdx);
}

TEST(Calibration, RaisesThresholdUntilRsvMet)
{
    // A model that always gates on a mostly-no-gate dataset: only a
    // high threshold can stop it.
    Dataset d = groupedData(10, 40, 5);
    for (auto &y : d.y)
        y = 0;
    MlpConfig cfg;
    cfg.epochs = 1;
    auto model = trainMlp(d, cfg);
    // Force the scores high by construction: skip training effects
    // and verify the calibration moves the threshold monotonically.
    calibrateThreshold(*model, d, 8, 0.0);
    EXPECT_GE(model->threshold(), 0.5);
}

TEST(CrossVal, RunsAllFolds)
{
    const Dataset d = groupedData(25, 20, 6);
    CrossValOptions opts;
    opts.folds = 4;
    opts.rsvWindow = 8;
    const CrossValSummary s = crossValidate(
        d,
        [](const Dataset &tune, uint64_t seed) {
            MlpConfig cfg;
            cfg.epochs = 10;
            cfg.seed = seed;
            return std::unique_ptr<Model>(trainMlp(tune, cfg).release());
        },
        opts);
    EXPECT_EQ(s.folds.size(), 4u);
    EXPECT_GT(s.pgosMean, 0.6); // learnable linear task
    EXPECT_GE(s.pgosStd, 0.0);
}

TEST(CrossVal, MaxTuneSamplesRespected)
{
    const Dataset d = groupedData(25, 40, 7);
    CrossValOptions opts;
    opts.folds = 2;
    opts.maxTuneSamples = 50;
    opts.rsvWindow = 8;
    size_t seen = 0;
    crossValidate(
        d,
        [&](const Dataset &tune, uint64_t) {
            seen = std::max(seen, tune.numSamples());
            ForestConfig fc;
            fc.numTrees = 2;
            fc.maxDepth = 4;
            return std::unique_ptr<Model>(
                std::make_unique<RandomForest>(tune, fc).release());
        },
        opts);
    EXPECT_LE(seen, 50u);
}

TEST(EvaluateModel, CountsMatchManual)
{
    const Dataset d = groupedData(5, 20, 8);
    ForestConfig fc;
    fc.numTrees = 4;
    fc.maxDepth = 6;
    RandomForest model(d, fc);
    const EvalResult r = evaluateModel(model, d, 8);
    EXPECT_EQ(r.confusion.total(), d.numSamples());
    EXPECT_GE(r.pgos, 0.0);
    EXPECT_LE(r.pgos, 1.0);
    EXPECT_GE(r.rsv, 0.0);
    EXPECT_LE(r.rsv, 1.0);
}
