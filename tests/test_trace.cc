/**
 * @file
 * Tests for the synthetic workload substrate: kernels, genomes,
 * trace generation, and the corpora.
 */

#include <gtest/gtest.h>

#include <map>

#include "trace/corpus.hh"
#include "trace/generator.hh"

using namespace psca;

namespace {

Workload
kernelWorkload(KernelParams kp, uint64_t len = 20000)
{
    AppGenome g;
    g.name = "test";
    g.seed = 99;
    PhaseSpec p;
    p.kernel = kp;
    p.meanLenInstr = 1e9;
    g.phases = {p};
    Workload w;
    w.genome = g;
    w.inputSeed = 1;
    w.lengthInstr = len;
    w.name = "test";
    return w;
}

} // namespace

class AllKernels : public ::testing::TestWithParam<KernelKind>
{};

TEST_P(AllKernels, EmitsExactCount)
{
    KernelParams kp;
    kp.kind = GetParam();
    TraceGenerator gen(kernelWorkload(kp));
    std::vector<MicroOp> ops;
    gen.fill(ops, 5000);
    EXPECT_EQ(ops.size(), 5000u);
    EXPECT_EQ(gen.produced(), 5000u);
}

TEST_P(AllKernels, DeterministicAcrossReset)
{
    KernelParams kp;
    kp.kind = GetParam();
    TraceGenerator gen(kernelWorkload(kp));
    std::vector<MicroOp> a, b;
    gen.fill(a, 3000);
    gen.reset();
    gen.fill(b, 3000);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pc, b[i].pc) << i;
        EXPECT_EQ(a[i].addr, b[i].addr) << i;
        EXPECT_EQ(a[i].cls, b[i].cls) << i;
        EXPECT_EQ(a[i].dst, b[i].dst) << i;
        EXPECT_EQ(a[i].branchTaken, b[i].branchTaken) << i;
    }
}

TEST_P(AllKernels, ChunkingInvariant)
{
    KernelParams kp;
    kp.kind = GetParam();
    TraceGenerator g1(kernelWorkload(kp));
    TraceGenerator g2(kernelWorkload(kp));
    std::vector<MicroOp> a, b;
    g1.fill(a, 2000);
    for (int i = 0; i < 20; ++i)
        g2.fill(b, 100);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].pc, b[i].pc) << i;
}

TEST_P(AllKernels, MemOpsCarryAddresses)
{
    KernelParams kp;
    kp.kind = GetParam();
    TraceGenerator gen(kernelWorkload(kp));
    std::vector<MicroOp> ops;
    gen.fill(ops, 5000);
    for (const auto &op : ops) {
        if (op.isMem()) {
            EXPECT_GT(op.addr, 0u);
            EXPECT_GT(op.memSize, 0);
        }
        if (op.dst != kNoReg) {
            EXPECT_GE(op.dst, 0);
            EXPECT_LT(op.dst, kNumArchRegs);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllKernels,
    ::testing::Values(KernelKind::Stream, KernelKind::PointerChase,
                      KernelKind::Ilp, KernelKind::Branchy,
                      KernelKind::MlpRich, KernelKind::Stencil,
                      KernelKind::FpSerial));

TEST(Kernels, BranchDensityIndependentOfIlpDegree)
{
    // The saturation blindspot requires that chain count not leak
    // through branch density.
    double density[2];
    int idx = 0;
    for (uint8_t chains : {3, 14}) {
        KernelParams kp;
        kp.kind = KernelKind::Ilp;
        kp.chains = chains;
        TraceGenerator gen(kernelWorkload(kp));
        std::vector<MicroOp> ops;
        gen.fill(ops, 20000);
        int branches = 0;
        for (const auto &op : ops)
            branches += op.isBranch() ? 1 : 0;
        density[idx++] = branches / 20000.0;
    }
    EXPECT_NEAR(density[0], density[1], 0.005);
}

TEST(Kernels, PointerChaseIsDependent)
{
    KernelParams kp;
    kp.kind = KernelKind::PointerChase;
    kp.chains = 1;
    TraceGenerator gen(kernelWorkload(kp));
    std::vector<MicroOp> ops;
    gen.fill(ops, 1000);
    // Every load's address register must be written by the preceding
    // addr-calc, which reads the previous load's destination.
    for (size_t i = 1; i < ops.size(); ++i) {
        if (ops[i].isLoad()) {
            EXPECT_EQ(ops[i - 1].dst, ops[i].src0);
        }
    }
}

TEST(Genome, SamplingIsDeterministic)
{
    const AppGenome a = sampleGenome(AppCategory::HpcPerf, 123);
    const AppGenome b = sampleGenome(AppCategory::HpcPerf, 123);
    ASSERT_EQ(a.phases.size(), b.phases.size());
    for (size_t i = 0; i < a.phases.size(); ++i) {
        EXPECT_EQ(a.phases[i].kernel.kind, b.phases[i].kernel.kind);
        EXPECT_DOUBLE_EQ(a.phases[i].weight, b.phases[i].weight);
    }
}

TEST(Genome, DifferentSeedsDiffer)
{
    const AppGenome a = sampleGenome(AppCategory::Multimedia, 1);
    const AppGenome b = sampleGenome(AppCategory::Multimedia, 2);
    EXPECT_NE(a.name, b.name);
}

TEST(Generator, InputSeedChangesTraceButNotIdentity)
{
    const AppGenome g = sampleGenome(AppCategory::CloudSecurity, 5);
    Workload w1, w2;
    w1.genome = w2.genome = g;
    w1.inputSeed = 1;
    w2.inputSeed = 2;
    w1.lengthInstr = w2.lengthInstr = 5000;
    TraceGenerator g1(w1), g2(w2);
    std::vector<MicroOp> a, b;
    g1.fill(a, 5000);
    g2.fill(b, 5000);
    int diff = 0;
    for (size_t i = 0; i < a.size(); ++i)
        diff += a[i].pc != b[i].pc ? 1 : 0;
    EXPECT_GT(diff, 0);
}

TEST(Corpus, HdtrMatchesTable1)
{
    HdtrCategorySizes sizes;
    EXPECT_EQ(sizes.total(), 593);
    const auto apps = buildHdtrApps(593);
    EXPECT_EQ(apps.size(), 593u);
    std::map<AppCategory, int> per_cat;
    for (const auto &a : apps)
        ++per_cat[a.category];
    EXPECT_EQ(per_cat[AppCategory::HpcPerf], 176);
    EXPECT_EQ(per_cat[AppCategory::CloudSecurity], 75);
    EXPECT_EQ(per_cat[AppCategory::AiAnalytics], 34);
    EXPECT_EQ(per_cat[AppCategory::WebProductivity], 171);
    EXPECT_EQ(per_cat[AppCategory::Multimedia], 80);
    EXPECT_EQ(per_cat[AppCategory::GamesRendering], 57);
}

TEST(Corpus, HdtrPrefixStaysDiverse)
{
    const auto apps = buildHdtrApps(60);
    std::map<AppCategory, int> per_cat;
    for (const auto &a : apps)
        ++per_cat[a.category];
    EXPECT_GE(per_cat.size(), 5u);
}

TEST(Corpus, HdtrTraceCountAveragesPaperRatio)
{
    const auto apps = buildHdtrApps(593);
    int total = 0;
    for (const auto &a : apps)
        total += hdtrTraceCount(a);
    // Paper: 2,648 traces over 593 apps.
    EXPECT_NEAR(total, 2648, 150);
}

TEST(Corpus, SpecMatchesTable2)
{
    const auto suite = buildSpecApps();
    ASSERT_EQ(suite.size(), 20u);
    int workloads = 0, fp = 0;
    for (const auto &app : suite) {
        workloads += app.numInputs;
        fp += app.isFp ? 1 : 0;
    }
    // Table 2's per-app counts sum to 117 (the paper's prose says
    // "118 workloads"; the table itself adds to 117).
    EXPECT_EQ(workloads, 117);
    EXPECT_EQ(fp, 10);
}

TEST(Corpus, SpecWorkloadExpansion)
{
    const auto suite = buildSpecApps();
    const auto traces = allSpecWorkloads(suite, 100000, 2);
    EXPECT_EQ(traces.size(), 117u * 2u);
    for (const auto &t : traces)
        EXPECT_EQ(t.lengthInstr, 100000u);
}
