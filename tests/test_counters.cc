/**
 * @file
 * Tests for the 936-counter telemetry registry.
 */

#include <gtest/gtest.h>

#include <set>

#include "telemetry/counters.hh"

using namespace psca;

TEST(Registry, Exactly936Counters)
{
    EXPECT_EQ(CounterRegistry::instance().numCounters(),
              kNumTelemetryCounters);
    EXPECT_EQ(kNumTelemetryCounters, 936u);
}

TEST(Registry, NamesAreUnique)
{
    const auto &reg = CounterRegistry::instance();
    std::set<std::string> names;
    for (size_t i = 0; i < reg.numCounters(); ++i)
        names.insert(reg.name(static_cast<uint16_t>(i)));
    EXPECT_EQ(names.size(), reg.numCounters());
}

TEST(Registry, Table4CounterNamesExist)
{
    // The paper's Table 4 counters must be resolvable by name.
    const char *const names[] = {
        "Micro Op Cache Misses", "L2 Silent Evictions",
        "Wrong-Path uOps Flushed", "Store Queue Occupancy",
        "L1 Data Cache Reads", "Stall Count",
        "Physical Register Ref. Count", "Loads Retired",
        "L1 Data Cache Hits", "Micro Op Cache Hits",
        "Micro Ops Stalled on Dep.", "Micro Ops Ready",
    };
    const auto &reg = CounterRegistry::instance();
    for (const char *n : names)
        EXPECT_LT(reg.indexOf(n), reg.numCounters()) << n;
}

TEST(Registry, CharstarCounterNamesExist)
{
    const char *const names[] = {
        "Branch Mispredictions", "Instruction Cache Misses",
        "L1 Data Cache Misses", "L2 Cache Misses",
        "Instructions Retired", "I-TLB Misses", "D-TLB Misses",
        "Stall Count",
    };
    const auto &reg = CounterRegistry::instance();
    for (const char *n : names)
        EXPECT_LT(reg.indexOf(n), reg.numCounters()) << n;
}

TEST(Registry, ScalarIndexMatchesEnumOrder)
{
    const auto &reg = CounterRegistry::instance();
    EXPECT_EQ(reg.name(CounterRegistry::index(Ctr::Cycles)), "Cycles");
    EXPECT_EQ(reg.name(CounterRegistry::index(Ctr::LoadsRetired)),
              "Loads Retired");
}

TEST(Registry, PerClusterIndicesDistinct)
{
    const auto &reg = CounterRegistry::instance();
    const uint16_t a = reg.index(ClusterCtr::UopsIssued, 0);
    const uint16_t b = reg.index(ClusterCtr::UopsIssued, 1);
    EXPECT_NE(a, b);
    EXPECT_NE(reg.name(a), reg.name(b));
}

TEST(Registry, FamilyRangesDoNotOverlap)
{
    const auto &reg = CounterRegistry::instance();
    for (size_t f = 0; f + 1 < static_cast<size_t>(
             CtrFamily::NumFamilies); ++f) {
        const auto fam = static_cast<CtrFamily>(f);
        const auto next = static_cast<CtrFamily>(f + 1);
        EXPECT_LE(reg.familyBase(fam) + reg.familySize(fam),
                  reg.familyBase(next));
    }
}

TEST(Registry, ReservedCountersAtTail)
{
    const auto &reg = CounterRegistry::instance();
    EXPECT_LT(reg.reservedBase(), reg.numCounters());
    EXPECT_EQ(reg.name(reg.reservedBase()).substr(0, 8), "Reserved");
}

TEST(Counters, IncAndMirrorSync)
{
    Counters c;
    c.inc(Ctr::L1dMiss, 7);
    EXPECT_EQ(c.value(Ctr::L1dMiss), 7u);
    c.syncMirrors();
    const auto &reg = CounterRegistry::instance();
    // Find the mirror of L1dMiss and check it copied.
    bool found = false;
    for (size_t k = 0; k < reg.numMirrors(); ++k) {
        if (reg.mirrorSource(k) == CounterRegistry::index(Ctr::L1dMiss)) {
            EXPECT_EQ(c.value(reg.mirrorIndex(k)), 7u);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Counters, ResetZeroes)
{
    Counters c;
    c.inc(Ctr::Cycles, 100);
    c.reset();
    EXPECT_EQ(c.value(Ctr::Cycles), 0u);
}

TEST(Registry, UnknownNameIsFatal)
{
    // Re-exec instead of fork; forking a threaded process can
    // deadlock the death-test child.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(CounterRegistry::instance().indexOf("No Such Counter"),
                 "unknown counter");
}
