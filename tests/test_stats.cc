/**
 * @file
 * Tests for streaming and batch statistics helpers.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "math/stats.hh"

using namespace psca;

TEST(RunningStats, MatchesBatch)
{
    Rng rng(3);
    RunningStats rs;
    std::vector<double> v;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.gaussian(3.0, 2.0);
        rs.add(x);
        v.push_back(x);
    }
    EXPECT_NEAR(rs.mean(), mean(v), 1e-9);
    EXPECT_NEAR(rs.stddev(), stddev(v), 1e-9);
    EXPECT_EQ(rs.count(), 1000u);
}

TEST(RunningStats, MinMax)
{
    RunningStats rs;
    for (double x : {3.0, -1.0, 7.0, 2.0})
        rs.add(x);
    EXPECT_DOUBLE_EQ(rs.min(), -1.0);
    EXPECT_DOUBLE_EQ(rs.max(), 7.0);
}

TEST(RunningStats, MergeEqualsCombined)
{
    Rng rng(5);
    RunningStats a, b, all;
    for (int i = 0; i < 500; ++i) {
        const double x = rng.uniform(0, 10);
        (i < 200 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_EQ(a.count(), all.count());
}

TEST(RunningStats, EmptyIsZero)
{
    RunningStats rs;
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

TEST(Stats, MeanStddevKnown)
{
    std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(v), 5.0);
    EXPECT_NEAR(stddev(v), 2.138, 0.001);
}

TEST(Stats, StddevSingleElementZero)
{
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
}

TEST(Stats, QuantileEndpoints)
{
    std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
}

TEST(Stats, QuantileInterpolates)
{
    std::vector<double> v{0.0, 10.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
}
