/**
 * @file
 * Tests for the crash-safe execution journal (common/journal.hh):
 * transactional artifact writes, two-phase multi-file commits,
 * journal replay and resume, torn-tail truncation, header-corruption
 * quarantine, checkpoint tampering, deterministic retry backoff, and
 * the cooperative stop flag.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/journal.hh"
#include "common/rng.hh"
#include "common/serialize.hh"

using namespace psca;
namespace fs = std::filesystem;

namespace {

/** Fresh scratch directory per test. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = "/tmp/psca_journal_test/" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/** Count non-directory entries whose name contains @p needle. */
size_t
countFilesContaining(const std::string &dir, const std::string &needle)
{
    size_t n = 0;
    for (const auto &e : fs::directory_iterator(dir))
        if (e.path().filename().string().find(needle) !=
            std::string::npos)
            ++n;
    return n;
}

/** Deterministic unit result: pure function of the index. */
uint64_t
unitValue(size_t i)
{
    return mixSeeds(0xabcdefULL, i + 1);
}

/** Run a checkpointedMap of n units through @p journal. */
std::vector<uint64_t>
runUnits(Journal &journal, size_t n, uint64_t config_h = 7)
{
    return checkpointedMap<uint64_t>(
        journal, "test.units", config_h, n,
        [](BinaryWriter &w, const uint64_t &v) { w.put(v); },
        [](BinaryReader &in) { return in.get<uint64_t>(); },
        [](size_t i) { return unitValue(i); });
}

TEST(ArtifactStore, WriteIsAtomicAndChecksummed)
{
    const std::string dir = scratchDir("artifact_write");
    const std::string path = dir + "/a.bin";
    uint64_t sum = 0;
    ASSERT_TRUE(writeArtifactFile(path, [](BinaryWriter &out) {
        out.put<uint64_t>(42);
        out.putString("payload");
    }, &sum));
    EXPECT_TRUE(fs::exists(path));
    EXPECT_NE(sum, 0u);
    // No temp siblings left behind.
    EXPECT_EQ(countFilesContaining(dir, ".tmp"), 0u);

    BinaryReader in(path);
    EXPECT_EQ(in.get<uint64_t>(), 42u);
    EXPECT_EQ(in.getString(), "payload");
}

TEST(ArtifactStore, FailedPublishLeavesTargetUntouched)
{
    const std::string dir = scratchDir("artifact_fail");
    // The final name is taken by a non-empty directory, so the
    // commit-point rename must fail: writeArtifactFile reports
    // failure, removes its temp, and the target is untouched.
    const std::string path = dir + "/occupied";
    fs::create_directories(path);
    std::ofstream(path + "/keep") << "x";
    EXPECT_FALSE(writeArtifactFile(
        path, [](BinaryWriter &out) { out.put<uint64_t>(1); }));
    EXPECT_TRUE(fs::is_directory(path));
    EXPECT_TRUE(fs::exists(path + "/keep"));
    EXPECT_EQ(countFilesContaining(dir, ".tmp"), 0u);
}

TEST(ArtifactStore, TxnCommitPublishesAllFiles)
{
    const std::string dir = scratchDir("txn_commit");
    ArtifactTxn txn;
    txn.stage(dir + "/x.bin").put<uint64_t>(1);
    txn.stage(dir + "/y.bin").put<uint64_t>(2);
    ASSERT_TRUE(txn.commit());
    EXPECT_TRUE(fs::exists(dir + "/x.bin"));
    EXPECT_TRUE(fs::exists(dir + "/y.bin"));
    EXPECT_EQ(countFilesContaining(dir, ".tmp"), 0u);
}

TEST(ArtifactStore, TxnAbortAndDestructorPublishNothing)
{
    const std::string dir = scratchDir("txn_abort");
    {
        ArtifactTxn txn;
        txn.stage(dir + "/x.bin").put<uint64_t>(1);
        txn.abort();
    }
    {
        ArtifactTxn txn; // destroyed without commit()
        txn.stage(dir + "/y.bin").put<uint64_t>(2);
    }
    EXPECT_FALSE(fs::exists(dir + "/x.bin"));
    EXPECT_FALSE(fs::exists(dir + "/y.bin"));
    EXPECT_EQ(countFilesContaining(dir, ".tmp"), 0u);
}

TEST(ArtifactStore, TxnPublishFailureReportsFalse)
{
    const std::string dir = scratchDir("txn_fail");
    // One final name is taken by a non-empty directory: its rename
    // must fail and commit() must report the incomplete publish.
    const std::string blocked = dir + "/occupied";
    fs::create_directories(blocked);
    std::ofstream(blocked + "/keep") << "x";
    ArtifactTxn txn;
    txn.stage(blocked).put<uint64_t>(1);
    txn.stage(dir + "/good.bin").put<uint64_t>(2);
    EXPECT_FALSE(txn.commit());
    EXPECT_TRUE(fs::is_directory(blocked));
    EXPECT_EQ(countFilesContaining(dir, ".tmp"), 0u);
}

TEST(Quarantine, CollisionsGetSequenceSuffixes)
{
    const std::string dir = scratchDir("quarantine");
    const std::string path = dir + "/victim.bin";
    auto plant = [&] { std::ofstream(path) << "corrupt"; };

    plant();
    const QuarantineResult first = quarantineFile(path, "test");
    EXPECT_EQ(first.dest, path + ".quarantined");
    EXPECT_FALSE(first.collided);

    plant();
    const QuarantineResult second = quarantineFile(path, "test");
    EXPECT_EQ(second.dest, path + ".quarantined.1");
    EXPECT_TRUE(second.collided);

    plant();
    const QuarantineResult third = quarantineFile(path, "test");
    EXPECT_EQ(third.dest, path + ".quarantined.2");
    EXPECT_TRUE(third.collided);

    EXPECT_TRUE(fs::exists(first.dest));
    EXPECT_TRUE(fs::exists(second.dest));
    EXPECT_TRUE(fs::exists(third.dest));
}

TEST(RetryBackoff, DeterministicAndBounded)
{
    for (uint64_t key : {1ULL, 99ULL, 0xdeadULL}) {
        for (int attempt = 0; attempt < 4; ++attempt) {
            const int a = retryBackoffMs(key, attempt);
            const int b = retryBackoffMs(key, attempt);
            EXPECT_EQ(a, b) << "backoff must be reproducible";
            EXPECT_GE(a, 1 << attempt);
            EXPECT_LT(a, 2 << attempt);
        }
    }
    // Different keys draw from different jitter substreams.
    bool any_differ = false;
    for (int attempt = 2; attempt < 6; ++attempt)
        any_differ |=
            retryBackoffMs(1, attempt) != retryBackoffMs(2, attempt);
    EXPECT_TRUE(any_differ);
}

TEST(Journal, ExecutesAllUnitsFreshAndJournalsThem)
{
    const std::string dir = scratchDir("fresh");
    Journal journal(dir, true, true);
    const std::vector<uint64_t> out = runUnits(journal, 16);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], unitValue(i));
    const JournalStats st = journal.stats();
    EXPECT_TRUE(st.active);
    EXPECT_EQ(st.unitsExecuted, 16u);
    EXPECT_EQ(st.unitsSkipped, 0u);
    EXPECT_EQ(Journal::countEntries(journal.journalPath()), 16u);
    EXPECT_EQ(journal.unitsDone("test.units", 7), 16u);
}

TEST(Journal, ResumeSkipsCompletedUnitsWithIdenticalResults)
{
    const std::string dir = scratchDir("resume");
    std::vector<uint64_t> first;
    {
        Journal journal(dir, true, true);
        first = runUnits(journal, 16);
    }
    Journal journal(dir, true, true);
    const std::vector<uint64_t> second = runUnits(journal, 16);
    EXPECT_EQ(first, second);
    const JournalStats st = journal.stats();
    EXPECT_EQ(st.unitsSkipped, 16u);
    EXPECT_EQ(st.unitsExecuted, 0u);
}

TEST(Journal, DifferentConfigHashRecomputes)
{
    const std::string dir = scratchDir("confighash");
    {
        Journal journal(dir, true, true);
        runUnits(journal, 8, /*config_h=*/7);
    }
    Journal journal(dir, true, true);
    runUnits(journal, 8, /*config_h=*/8);
    EXPECT_EQ(journal.stats().unitsExecuted, 8u);
    EXPECT_EQ(journal.stats().unitsSkipped, 0u);
}

TEST(Journal, TamperedCheckpointIsQuarantinedAndRecomputed)
{
    const std::string dir = scratchDir("tamper");
    {
        Journal journal(dir, true, true);
        runUnits(journal, 8);
    }
    // Flip one payload byte of unit 3's checkpoint artifact.
    const std::string victim = Journal(dir, true, true).unitPath(
        Journal::scopeHash("test.units"), 7, 3);
    ASSERT_TRUE(fs::exists(victim));
    {
        std::fstream f(victim,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(16);
        char b = 0;
        f.seekg(16);
        f.get(b);
        b = static_cast<char>(b ^ 0x5a);
        f.seekp(16);
        f.put(b);
    }
    Journal journal(dir, true, true);
    const std::vector<uint64_t> out = runUnits(journal, 8);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], unitValue(i)) << "unit " << i;
    const JournalStats st = journal.stats();
    EXPECT_EQ(st.verifyFailures, 1u);
    EXPECT_EQ(st.unitsExecuted, 1u);
    EXPECT_EQ(st.unitsSkipped, 7u);
    EXPECT_GE(countFilesContaining(dir, ".quarantined"), 1u);
}

TEST(Journal, TornTailIsTruncatedEntriesSurvive)
{
    const std::string dir = scratchDir("torn");
    std::string jpath;
    {
        Journal journal(dir, true, true);
        runUnits(journal, 8);
        jpath = journal.journalPath();
    }
    // A SIGKILL mid-append leaves a partial frame at the tail.
    {
        std::ofstream f(jpath,
                        std::ios::binary | std::ios::app);
        const char garbage[7] = {33, 0, 0, 0, 1, 2, 3};
        f.write(garbage, sizeof(garbage));
    }
    Journal journal(dir, true, true);
    EXPECT_EQ(journal.stats().tornTails, 1u);
    EXPECT_EQ(journal.unitsDone("test.units", 7), 8u);
    const std::vector<uint64_t> out = runUnits(journal, 8);
    EXPECT_EQ(journal.stats().unitsSkipped, 8u);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], unitValue(i));
    // The torn bytes are gone: the file replays clean now.
    EXPECT_EQ(Journal::countEntries(jpath), 8u);
}

TEST(Journal, CorruptHeaderQuarantinesWholeJournal)
{
    const std::string dir = scratchDir("header");
    std::string jpath;
    {
        Journal journal(dir, true, true);
        runUnits(journal, 8);
        jpath = journal.journalPath();
    }
    {
        std::fstream f(jpath,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(2);
        f.put('\x7f'); // break the magic
    }
    Journal journal(dir, true, true);
    EXPECT_EQ(journal.stats().quarantines, 1u);
    EXPECT_EQ(journal.unitsDone("test.units", 7), 0u);
    EXPECT_GE(countFilesContaining(dir, "journal.psj.quarantined"), 1u);
    // The run rebuilds from scratch — corruption costs time, never
    // correctness.
    const std::vector<uint64_t> out = runUnits(journal, 8);
    EXPECT_EQ(journal.stats().unitsExecuted, 8u);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], unitValue(i));
}

TEST(Journal, ResumeDisabledStartsFresh)
{
    const std::string dir = scratchDir("noresume");
    {
        Journal journal(dir, true, true);
        runUnits(journal, 8);
    }
    Journal journal(dir, true, /*resume=*/false);
    EXPECT_EQ(journal.unitsDone("test.units", 7), 0u);
    runUnits(journal, 8);
    EXPECT_EQ(journal.stats().unitsExecuted, 8u);
}

TEST(Journal, DisabledJournalTouchesNoFiles)
{
    const std::string dir = "/tmp/psca_journal_test/disabled";
    fs::remove_all(dir);
    Journal journal(dir, /*enabled=*/false, true);
    const std::vector<uint64_t> out = runUnits(journal, 8);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], unitValue(i));
    EXPECT_FALSE(fs::exists(dir));
    EXPECT_FALSE(journal.stats().active);
}

TEST(Journal, RetireScopeCompactsAndDeletesCheckpoints)
{
    const std::string dir = scratchDir("retire");
    {
        Journal journal(dir, true, true);
        runUnits(journal, 8);
        EXPECT_EQ(countFilesContaining(dir, "ckpt_"), 8u);
        journal.retireScope("test.units", 7);
        EXPECT_EQ(journal.unitsDone("test.units", 7), 0u);
        EXPECT_EQ(countFilesContaining(dir, "ckpt_"), 0u);
        EXPECT_EQ(journal.stats().scopesRetired, 1u);
    }
    // Replay compacts the retired scope away.
    Journal journal(dir, true, true);
    EXPECT_EQ(journal.unitsDone("test.units", 7), 0u);
}

TEST(Journal, ThrowingUnitIsRetriedDeterministically)
{
    const std::string dir = scratchDir("retry");
    Journal journal(dir, true, true);
    std::atomic<int> failures{0};
    journal.runCheckpointed(
        "test.flaky", 1, 4,
        [](size_t, BinaryReader &in) {
            in.get<uint64_t>();
            return in.good();
        },
        [&](size_t i) {
            // Unit 2 fails on its first attempt only.
            if (i == 2 && failures.fetch_add(1) == 0)
                throw std::runtime_error("transient");
        },
        [](size_t, BinaryWriter &w) { w.put<uint64_t>(0); });
    const JournalStats st = journal.stats();
    EXPECT_EQ(st.unitsExecuted, 4u);
    EXPECT_GE(st.unitRetries, 1u);
    EXPECT_EQ(journal.unitsDone("test.flaky", 1), 4u);
}

TEST(Journal, StopRequestInterruptsAtUnitBoundary)
{
    const std::string dir = scratchDir("stop");
    Journal journal(dir, true, true);
    clearStopRequest();
    requestStop();
    EXPECT_THROW(runUnits(journal, 8), RunInterrupted);
    clearStopRequest();
    // Nothing ran while stopped; a clean re-entry completes the work.
    const std::vector<uint64_t> out = runUnits(journal, 8);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], unitValue(i));
    EXPECT_EQ(journal.unitsDone("test.units", 7), 8u);
}

TEST(Journal, CountEntriesToleratesMissingFile)
{
    EXPECT_EQ(Journal::countEntries(
                  "/tmp/psca_journal_test/nonexistent.psj"),
              0u);
}

} // namespace
