/**
 * @file
 * Tests for the deployable firmware package (save/load round trip,
 * VM-executed decisions matching native decisions in the closed
 * loop) and the fail-safe guardrail.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/firmware_image.hh"
#include "core/guardrail.hh"
#include "core/pipeline.hh"

using namespace psca;

namespace {

BuildConfig
smallConfig()
{
    BuildConfig cfg;
    cfg.intervalInstr = 10000;
    cfg.warmupInstr = 20000;
    cfg.counterIds = {
        CounterRegistry::index(Ctr::InstRetired),
        CounterRegistry::index(Ctr::StallCount),
        CounterRegistry::index(Ctr::L1dMiss),
        CounterRegistry::index(Ctr::LoadLatSum),
        CounterRegistry::index(Ctr::MshrOccSum),
        CounterRegistry::index(Ctr::UopsStalledOnDep),
    };
    return cfg;
}

Workload
mixedWorkload(uint64_t seed, uint64_t len)
{
    AppGenome g;
    g.name = "fw_test";
    g.seed = seed;
    PhaseSpec gate, hungry;
    gate.kernel = {.kind = KernelKind::PointerChase,
                   .workingSetBytes = 16 << 20, .chains = 4};
    gate.weight = 0.5;
    gate.meanLenInstr = 150e3;
    hungry.kernel = {.kind = KernelKind::Ilp, .chains = 14};
    hungry.weight = 0.5;
    hungry.meanLenInstr = 150e3;
    g.phases = {gate, hungry};
    Workload w;
    w.genome = g;
    w.inputSeed = 1;
    w.lengthInstr = len;
    w.name = "fw_test";
    return w;
}

TrainedDual
trainSmallRf(const std::vector<TraceRecord> &records,
             const BuildConfig &cfg)
{
    DualTrainOptions opts;
    opts.granularityInstr = 20000;
    opts.columns = {0, 1, 2, 3, 4, 5};
    opts.rsvWindow = 64;
    return trainDual(
        records, cfg, opts,
        [](const Dataset &tune, uint64_t s) -> std::unique_ptr<Model> {
            ForestConfig fc;
            fc.numTrees = 4;
            fc.maxDepth = 6;
            fc.seed = s;
            return std::make_unique<RandomForest>(tune, fc);
        });
}

} // namespace

TEST(FirmwarePackage, SaveLoadRoundTrip)
{
    const BuildConfig cfg = smallConfig();
    const Workload w = mixedWorkload(3, 300000);
    const TraceRecord rec = recordTrace(w, cfg, 0, 0);
    TrainedDual dual = trainSmallRf({rec}, cfg);
    DualModelPredictor native(dual.high, dual.low,
                              {0, 1, 2, 3, 4, 5}, 20000, "rf");

    const FirmwarePackage pkg =
        packageFromDual(native, {0, 1, 2, 3, 4, 5});
    const std::string path = "/tmp/psca_fw_test.bin";
    pkg.save(path);
    const FirmwarePackage loaded = FirmwarePackage::load(path);

    EXPECT_EQ(loaded.name, pkg.name);
    EXPECT_EQ(loaded.granularityInstr, 20000u);
    EXPECT_EQ(loaded.columns, pkg.columns);
    EXPECT_EQ(loaded.low.program.code.size(),
              pkg.low.program.code.size());
    EXPECT_EQ(loaded.low.program.mem, pkg.low.program.mem);
    EXPECT_FLOAT_EQ(loaded.low.threshold, pkg.low.threshold);
    std::filesystem::remove(path);
}

TEST(FirmwarePackage, VmDecisionsMatchNativeClosedLoop)
{
    const BuildConfig cfg = smallConfig();
    const Workload train_w = mixedWorkload(3, 300000);
    const TraceRecord train_rec = recordTrace(train_w, cfg, 0, 0);
    TrainedDual dual = trainSmallRf({train_rec}, cfg);
    const std::vector<size_t> cols{0, 1, 2, 3, 4, 5};
    DualModelPredictor native(dual.high, dual.low, cols, 20000, "rf");
    VmPredictor vm(packageFromDual(native, cols));

    const Workload eval_w = mixedWorkload(9, 300000);
    const TraceRecord eval_rec = recordTrace(eval_w, cfg, 1, 1);
    const ClosedLoopResult a =
        runClosedLoop(eval_w, eval_rec, native, cfg, SlaSpec{});
    const ClosedLoopResult b =
        runClosedLoop(eval_w, eval_rec, vm, cfg, SlaSpec{});

    // The flashed firmware must reproduce the native decisions, so
    // the runs are identical.
    EXPECT_EQ(a.confusion.truePositive, b.confusion.truePositive);
    EXPECT_EQ(a.confusion.falsePositive, b.confusion.falsePositive);
    EXPECT_DOUBLE_EQ(a.lowResidency, b.lowResidency);
    EXPECT_NEAR(a.ppwGainPct, b.ppwGainPct, 1e-9);
    EXPECT_GT(vm.vmOpsExecuted(), 0u);
}

TEST(FirmwarePackage, LoadRejectsGarbage)
{
    // Re-exec instead of fork: the closed-loop tests above started
    // the thread pool, and forking a threaded process can deadlock
    // the death-test child (seen under UBSan's shifted timing).
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const std::string path = "/tmp/psca_fw_garbage.bin";
    {
        std::ofstream out(path, std::ios::binary);
        out << "not a firmware image";
    }
    EXPECT_DEATH(FirmwarePackage::load(path), "not a psca firmware");
    std::filesystem::remove(path);
}

namespace {

/** Always-gate predictor (a worst-case blindspot). */
class AlwaysGate : public GatePredictor
{
  public:
    uint64_t granularity() const override { return 20000; }
    bool decide(const std::vector<const float *> &,
                const std::vector<float> &, CoreMode) override
    {
        return true;
    }
    uint32_t opsPerInference() const override { return 1; }
    std::string name() const override { return "always_gate"; }
};

} // namespace

TEST(Guardrail, CapsDamageFromPathologicalModel)
{
    const BuildConfig cfg = smallConfig();
    // Width-hungry only: gating everything is maximally harmful.
    AppGenome g;
    g.name = "hungry";
    g.seed = 4;
    PhaseSpec p;
    p.kernel = {.kind = KernelKind::Ilp, .chains = 14};
    p.meanLenInstr = 1e9;
    g.phases = {p};
    Workload w;
    w.genome = g;
    w.inputSeed = 1;
    w.lengthInstr = 400000;
    w.name = "hungry";
    const TraceRecord rec = recordTrace(w, cfg, 0, 0);

    AlwaysGate bad;
    const ClosedLoopResult unguarded =
        runClosedLoop(w, rec, bad, cfg, SlaSpec{});

    AlwaysGate bad2;
    GuardrailedPredictor guarded(bad2);
    const ClosedLoopResult safe =
        runClosedLoop(w, rec, guarded, cfg, SlaSpec{});

    EXPECT_GT(guarded.trips(), 0u);
    EXPECT_GT(safe.perfRelativePct, unguarded.perfRelativePct);
    EXPECT_LT(safe.rsv, unguarded.rsv);
}

TEST(Guardrail, DoesNotDisturbGoodGating)
{
    const BuildConfig cfg = smallConfig();
    // Gate-friendly only: always-gate is the right answer, and the
    // guardrail should not fight it.
    AppGenome g;
    g.name = "friendly";
    g.seed = 5;
    PhaseSpec p;
    p.kernel = {.kind = KernelKind::PointerChase,
                .workingSetBytes = 16 << 20};
    p.meanLenInstr = 1e9;
    g.phases = {p};
    Workload w;
    w.genome = g;
    w.inputSeed = 1;
    w.lengthInstr = 400000;
    w.name = "friendly";
    const TraceRecord rec = recordTrace(w, cfg, 0, 0);

    AlwaysGate inner;
    GuardrailedPredictor guarded(inner);
    const ClosedLoopResult r =
        runClosedLoop(w, rec, guarded, cfg, SlaSpec{});
    EXPECT_GT(r.lowResidency, 0.7);
}

TEST(Guardrail, OpsOverheadSmall)
{
    AlwaysGate inner;
    GuardrailedPredictor guarded(inner);
    EXPECT_LE(guarded.opsPerInference(),
              inner.opsPerInference() + 10);
    EXPECT_EQ(guarded.granularity(), inner.granularity());
}
