/**
 * @file
 * Tests for the screens and Perona-Freeman counter selection on
 * synthetic records with known structure.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "core/pf_selection.hh"

using namespace psca;

namespace {

/**
 * Build a record whose counters follow a recipe: each counter is
 * either dead (always zero), a noisy copy of one of `groups`
 * independent signals, or independent noise.
 */
TraceRecord
syntheticRecord(const std::vector<int> &recipe, size_t intervals,
                uint64_t seed)
{
    // recipe[j] = -1 for dead, otherwise a signal-group id.
    Rng rng(seed);
    TraceRecord rec;
    rec.numCounters = static_cast<uint16_t>(recipe.size());
    const int num_groups =
        1 + *std::max_element(recipe.begin(), recipe.end());
    for (size_t t = 0; t < intervals; ++t) {
        std::vector<double> signal(
            static_cast<size_t>(num_groups));
        for (auto &s : signal)
            s = rng.gaussian(10.0, 3.0);
        for (size_t j = 0; j < recipe.size(); ++j) {
            const float v = recipe[j] < 0
                ? 0.0f
                : static_cast<float>(
                      signal[static_cast<size_t>(recipe[j])] +
                      rng.gaussian(0.0, 0.05));
            rec.deltaLow.push_back(v);
            rec.deltaHigh.push_back(v);
        }
        rec.cyclesLow.push_back(1.0f);
        rec.cyclesHigh.push_back(1.0f);
        rec.energyLowNj.push_back(0.0f);
        rec.energyHighNj.push_back(0.0f);
    }
    return rec;
}

PfConfig
openConfig()
{
    PfConfig cfg;
    cfg.stdDevCullFraction = 0.0;
    cfg.zeroFractionPerTrace = 0.5;
    cfg.flaggedTraceFraction = 0.5;
    return cfg;
}

} // namespace

TEST(PfSelection, ActivityScreenDropsDeadCounters)
{
    // Counters 2 and 5 are dead.
    const std::vector<int> recipe{0, 1, -1, 2, 3, -1};
    const TraceRecord rec = syntheticRecord(recipe, 300, 1);
    PfConfig cfg = openConfig();
    cfg.numToSelect = 4;
    const PfResult res =
        pfCounterSelection({rec}, cfg, CoreMode::LowPower);
    EXPECT_EQ(res.afterActivityScreen, 4u);
    for (uint16_t s : res.selected) {
        EXPECT_NE(s, 2);
        EXPECT_NE(s, 5);
    }
}

TEST(PfSelection, RedundantGroupYieldsOneRepresentative)
{
    // Three copies of signal 0, two of signal 1, one of 2 and 3.
    const std::vector<int> recipe{0, 0, 0, 1, 1, 2, 3};
    const TraceRecord rec = syntheticRecord(recipe, 400, 2);
    PfConfig cfg = openConfig();
    cfg.numToSelect = 4;
    const PfResult res =
        pfCounterSelection({rec}, cfg, CoreMode::LowPower);
    // Grouping may conservatively fold a borderline signal into a
    // neighbour, but every pick must represent a distinct signal.
    ASSERT_GE(res.selected.size(), 3u);
    std::set<int> signals;
    for (uint16_t s : res.selected)
        signals.insert(recipe[s]);
    EXPECT_EQ(signals.size(), res.selected.size());
}

TEST(PfSelection, StdDevScreenCullsQuietCounters)
{
    // Counter 0 carries signal; counters 1-3 are near-constant.
    Rng rng(3);
    TraceRecord rec;
    rec.numCounters = 4;
    for (size_t t = 0; t < 300; ++t) {
        rec.deltaLow.push_back(
            static_cast<float>(rng.gaussian(100.0, 30.0)));
        for (int j = 0; j < 3; ++j)
            rec.deltaLow.push_back(
                static_cast<float>(rng.gaussian(100.0, 0.01)));
        for (int j = 0; j < 4; ++j)
            rec.deltaHigh.push_back(rec.deltaLow[t * 4 +
                                                 static_cast<size_t>(j)]);
        rec.cyclesLow.push_back(1.0f);
        rec.cyclesHigh.push_back(1.0f);
        rec.energyLowNj.push_back(0.0f);
        rec.energyHighNj.push_back(0.0f);
    }
    PfConfig cfg = openConfig();
    cfg.stdDevCullFraction = 0.75;
    cfg.numToSelect = 1;
    const PfResult res =
        pfCounterSelection({rec}, cfg, CoreMode::LowPower);
    ASSERT_FALSE(res.selected.empty());
    EXPECT_EQ(res.selected[0], 0);
}

TEST(PfSelection, RankDepthBoundedByIndependentSignals)
{
    const std::vector<int> recipe{0, 0, 1, 1, 2, 2, 3, 3};
    const TraceRecord rec = syntheticRecord(recipe, 400, 4);
    PfConfig cfg = openConfig();
    cfg.numToSelect = 8;
    const PfResult res =
        pfCounterSelection({rec}, cfg, CoreMode::LowPower);
    // Only 4 independent signals exist; duplicates must be grouped
    // away rather than ranked.
    EXPECT_LE(res.selected.size(), 4u);
    std::set<int> signals;
    for (uint16_t s : res.selected)
        signals.insert(recipe[s]);
    EXPECT_EQ(signals.size(), res.selected.size());
}

TEST(PfSelection, DeterministicGivenRecords)
{
    const std::vector<int> recipe{0, 1, 2, 3, 0, 1};
    const TraceRecord rec = syntheticRecord(recipe, 300, 5);
    PfConfig cfg = openConfig();
    cfg.numToSelect = 4;
    const auto a = pfCounterSelection({rec}, cfg, CoreMode::LowPower);
    const auto b = pfCounterSelection({rec}, cfg, CoreMode::LowPower);
    EXPECT_EQ(a.selected, b.selected);
}
