/**
 * @file
 * Tests for the int8/fixed-point inference path (quant.hh,
 * DESIGN.md §14): tree traversal must be bit-exact against the float
 * forest on dequantized inputs, MLP/linear logits must stay within
 * their provable error bounds, payloads must round-trip through the
 * v4 firmware image, and stale-version images must be rejected.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/rng.hh"
#include "core/firmware_image.hh"
#include "ml/quant.hh"
#include "ml/svm.hh"

using namespace psca;

namespace {

Dataset
syntheticDataset(size_t features, size_t samples, uint64_t seed)
{
    Dataset data;
    data.numFeatures = features;
    Rng rng(seed);
    std::vector<float> row(features);
    for (size_t i = 0; i < samples; ++i) {
        double sum = 0.0;
        for (auto &v : row) {
            v = static_cast<float>(rng.uniform() * 6.0 - 3.0);
            sum += v;
        }
        const uint8_t label = sum + rng.uniform() > 0.0 ? 1 : 0;
        data.addSample(row.data(), label,
                       static_cast<uint32_t>(i % 5),
                       static_cast<uint32_t>(i % 11));
    }
    return data;
}

/** Float-tree leaf selection on an already-dequantized input. */
const DecisionTree::Node &
referenceLeaf(const DecisionTree &tree, const float *x)
{
    const auto &nodes = tree.nodes();
    int32_t node = 0;
    while (nodes[static_cast<size_t>(node)].feature >= 0) {
        const auto &nd = nodes[static_cast<size_t>(node)];
        node = x[nd.feature] <= nd.threshold ? nd.left : nd.right;
    }
    return nodes[static_cast<size_t>(node)];
}

/** Scalar float MLP forward returning the pre-sigmoid logit. */
double
floatLogit(const MlpModel &m, const float *x)
{
    std::vector<float> act(x, x + m.numInputs());
    std::vector<float> next;
    const auto &sizes = m.layerSizes();
    const size_t layers = sizes.size() - 1;
    for (size_t l = 0; l < layers; ++l) {
        const int fan_in = sizes[l];
        const int fan_out = sizes[l + 1];
        next.assign(static_cast<size_t>(fan_out), 0.0f);
        const bool last = l + 1 == layers;
        for (int f = 0; f < fan_out; ++f) {
            const float *row = m.weights(l).data() +
                static_cast<size_t>(f) * fan_in;
            float sum = m.biases(l)[static_cast<size_t>(f)];
            for (int i = 0; i < fan_in; ++i)
                sum += row[i] * act[static_cast<size_t>(i)];
            next[static_cast<size_t>(f)] =
                last ? sum : std::max(0.0f, sum);
        }
        act.swap(next);
    }
    return static_cast<double>(act[0]);
}

} // namespace

TEST(Quant, InputGridRoundTrips)
{
    // Grid points dequantize exactly; off-grid values snap to the
    // nearest grid point; the rails clamp.
    EXPECT_EQ(quant::quantizeInput(0.0f), 0);
    EXPECT_EQ(quant::quantizeInput(1.0f), quant::kInputScale);
    EXPECT_EQ(quant::quantizeInput(-1.0f), -quant::kInputScale);
    EXPECT_EQ(quant::quantizeInput(100.0f), 127);
    EXPECT_EQ(quant::quantizeInput(-100.0f), -128);
    for (int q = -128; q <= 127; ++q) {
        const float x = quant::dequantizeInput(
            static_cast<int8_t>(q));
        EXPECT_EQ(quant::quantizeInput(x), q);
    }
}

TEST(Quant, ForestTraversalBitExact)
{
    const Dataset data = syntheticDataset(12, 600, 31);
    ForestConfig fc;
    fc.numTrees = 8;
    fc.maxDepth = 8;
    fc.seed = 3;
    RandomForest forest(data, fc);
    const quant::QuantizedForest qf =
        quant::QuantizedForest::fromForest(forest);

    Rng rng(77);
    std::vector<float> x(12), deq(12);
    std::vector<int8_t> qx(12);
    for (int trial = 0; trial < 500; ++trial) {
        // Include out-of-grid magnitudes to exercise the clamp rails.
        for (auto &v : x)
            v = static_cast<float>(rng.uniform() * 24.0 - 12.0);
        quant::quantizeInputs(x.data(), x.size(), qx.data());
        for (size_t j = 0; j < x.size(); ++j)
            deq[j] = quant::dequantizeInput(qx[j]);

        // The integer traversal must select exactly the leaves the
        // float forest selects on the dequantized input.
        int64_t expected = 0;
        for (const auto &tree : forest.trees()) {
            const auto &leaf = referenceLeaf(*tree, deq.data());
            expected += std::lround(
                static_cast<double>(leaf.prob) * quant::kProbScale);
        }
        const double want = static_cast<double>(expected) /
            (static_cast<double>(forest.trees().size()) *
             quant::kProbScale);
        ASSERT_EQ(want, qf.scoreQuantized(qx.data()))
            << "trial " << trial;
        ASSERT_EQ(want, qf.score(x.data())) << "trial " << trial;
    }
}

TEST(Quant, MlpLogitWithinProvableBound)
{
    const Dataset data = syntheticDataset(12, 500, 32);
    MlpConfig mc;
    mc.hiddenLayers = {8, 8, 4};
    mc.epochs = 10;
    mc.seed = 7;
    const auto mlp = trainMlp(data, mc);
    const quant::QuantizedMlp qm =
        quant::QuantizedMlp::fromMlp(*mlp);
    const double bound = qm.logitErrorBound();
    EXPECT_GT(bound, 0.0);

    Rng rng(78);
    std::vector<float> x(12), deq(12);
    std::vector<int8_t> qx(12);
    double max_err = 0.0;
    for (int trial = 0; trial < 500; ++trial) {
        for (auto &v : x)
            v = static_cast<float>(rng.uniform() * 12.0 - 6.0);
        quant::quantizeInputs(x.data(), x.size(), qx.data());
        for (size_t j = 0; j < x.size(); ++j)
            deq[j] = quant::dequantizeInput(qx[j]);
        const double err = std::abs(qm.logitQuantized(qx.data()) -
                                    floatLogit(*mlp, deq.data()));
        max_err = std::max(max_err, err);
        ASSERT_LE(err, bound) << "trial " << trial;
    }
    // The bound should be meaningful, not vacuous: the observed
    // error must land within a few orders of magnitude of it.
    EXPECT_GT(max_err, 0.0);
}

TEST(Quant, LinearLogitWithinProvableBound)
{
    const Dataset data = syntheticDataset(12, 500, 33);
    LogRegConfig lc;
    LogisticRegression lr(data, lc);
    const quant::QuantizedLinear ql =
        quant::QuantizedLinear::fromLogReg(lr);
    const double bound = ql.logitErrorBound();
    EXPECT_GT(bound, 0.0);

    Rng rng(79);
    std::vector<float> x(12);
    std::vector<int8_t> qx(12);
    for (int trial = 0; trial < 500; ++trial) {
        for (auto &v : x)
            v = static_cast<float>(rng.uniform() * 12.0 - 6.0);
        quant::quantizeInputs(x.data(), x.size(), qx.data());
        double want = lr.bias();
        for (size_t j = 0; j < x.size(); ++j)
            want += lr.coefficients()[j] *
                static_cast<double>(quant::dequantizeInput(qx[j]));
        ASSERT_LE(std::abs(ql.logitQuantized(qx.data()) - want),
                  bound)
            << "trial " << trial;
    }
}

TEST(Quant, PayloadRoundTripsAllModelClasses)
{
    const Dataset data = syntheticDataset(12, 400, 34);
    ForestConfig fc;
    fc.numTrees = 4;
    fc.maxDepth = 6;
    RandomForest forest(data, fc);
    MlpConfig mc;
    mc.epochs = 3;
    const auto mlp = trainMlp(data, mc);
    LogisticRegression lr(data, LogRegConfig{});

    Rng rng(80);
    std::vector<float> x(12);
    for (const Model *m :
         {static_cast<const Model *>(&forest),
          static_cast<const Model *>(mlp.get()),
          static_cast<const Model *>(&lr)}) {
        const std::string payload = quant::packPayload(*m);
        ASSERT_FALSE(payload.empty()) << m->describe();
        const auto unpacked = quant::unpackPayload(payload);
        ASSERT_NE(unpacked, nullptr) << m->describe();
        const auto direct = quant::quantize(*m);
        ASSERT_NE(direct, nullptr) << m->describe();
        EXPECT_EQ(unpacked->opsPerInference(),
                  quant::payloadOps(payload));
        for (int trial = 0; trial < 100; ++trial) {
            for (auto &v : x)
                v = static_cast<float>(rng.uniform() * 8.0 - 4.0);
            ASSERT_EQ(direct->score(x.data()),
                      unpacked->score(x.data()))
                << m->describe() << " trial " << trial;
        }
    }

    // Unsupported model classes have no quantized form.
    Chi2SvmConfig sc;
    sc.maxSupportVectors = 16;
    sc.epochs = 1;
    const Chi2Svm svm(data, sc);
    EXPECT_TRUE(quant::packPayload(svm).empty());
    EXPECT_EQ(quant::quantize(svm), nullptr);
}

TEST(Quant, FirmwareV4RoundTripCarriesFixedPointSlots)
{
    const Dataset data = syntheticDataset(6, 400, 35);
    ForestConfig fc;
    fc.numTrees = 4;
    fc.maxDepth = 6;
    ScaledModel high{FeatureScaler::fit(data),
                     std::make_shared<RandomForest>(data, fc)};
    fc.seed = 2;
    ScaledModel low{FeatureScaler::fit(data),
                    std::make_shared<RandomForest>(data, fc)};
    DualModelPredictor native(high, low, {0, 1, 2, 3, 4, 5}, 20000,
                              "quant_rf");

    setenv("PSCA_UC_FIXED", "1", 1);
    const FirmwarePackage pkg =
        packageFromDual(native, {0, 1, 2, 3, 4, 5});
    unsetenv("PSCA_UC_FIXED");

    EXPECT_TRUE(pkg.fixedPoint);
    EXPECT_FALSE(pkg.high.quantPayload.empty());
    EXPECT_GT(pkg.high.quantOps, 0u);
    // Int8 cost model: cheaper than the float VM program.
    EXPECT_LT(pkg.high.quantOps, pkg.high.program.staticOpCount());

    const std::string path = "/tmp/psca_quant_fw_test.bin";
    pkg.save(path);
    const FirmwarePackage loaded = FirmwarePackage::load(path);
    EXPECT_TRUE(loaded.fixedPoint);
    EXPECT_EQ(loaded.high.quantPayload, pkg.high.quantPayload);
    EXPECT_EQ(loaded.low.quantPayload, pkg.low.quantPayload);
    EXPECT_EQ(loaded.high.quantOps, pkg.high.quantOps);

    // VmPredictor charges the budget at the int8 cost model.
    VmPredictor vm(loaded);
    EXPECT_EQ(vm.opsPerInference(),
              std::max(pkg.high.quantOps, pkg.low.quantOps));
    std::filesystem::remove(path);

    // Without the flag the package stays float-only and byte-stable.
    const FirmwarePackage plain =
        packageFromDual(native, {0, 1, 2, 3, 4, 5});
    EXPECT_FALSE(plain.fixedPoint);
    EXPECT_TRUE(plain.high.quantPayload.empty());
}

TEST(Quant, StaleFirmwareVersionRejected)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const Dataset data = syntheticDataset(6, 300, 36);
    ForestConfig fc;
    fc.numTrees = 2;
    fc.maxDepth = 4;
    ScaledModel slot{FeatureScaler::fit(data),
                     std::make_shared<RandomForest>(data, fc)};
    DualModelPredictor native(slot, slot, {0, 1, 2, 3, 4, 5}, 20000,
                              "stale");
    const FirmwarePackage pkg =
        packageFromDual(native, {0, 1, 2, 3, 4, 5});
    const std::string path = "/tmp/psca_quant_fw_stale.bin";
    pkg.save(path);

    // Patch the version field (u32 after the u64 magic) back to 3:
    // pre-fixed-point images must be rejected, not misparsed.
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(8);
        const uint32_t old_version = 3;
        f.write(reinterpret_cast<const char *>(&old_version),
                sizeof(old_version));
    }
    EXPECT_DEATH(FirmwarePackage::load(path), "version mismatch");
    std::filesystem::remove(path);
}
