/**
 * @file
 * Tests for the closed adaptation loop using oracle and constant
 * predictors: residency, PPW sign, prediction/label alignment.
 */

#include <gtest/gtest.h>

#include "core/controller.hh"

using namespace psca;

namespace {

BuildConfig
smallConfig()
{
    BuildConfig cfg;
    cfg.intervalInstr = 10000;
    cfg.warmupInstr = 20000;
    cfg.counterIds = {
        CounterRegistry::index(Ctr::InstRetired),
        CounterRegistry::index(Ctr::L1dMiss),
    };
    return cfg;
}

Workload
twoPhaseWorkload(uint64_t len)
{
    AppGenome g;
    g.name = "ctrl";
    g.seed = 51;
    PhaseSpec gate, hungry;
    gate.kernel = {.kind = KernelKind::PointerChase,
                   .workingSetBytes = 16 << 20};
    gate.weight = 0.5;
    gate.meanLenInstr = 120e3;
    hungry.kernel = {.kind = KernelKind::Ilp, .chains = 14};
    hungry.weight = 0.5;
    hungry.meanLenInstr = 120e3;
    g.phases = {gate, hungry};
    Workload w;
    w.genome = g;
    w.inputSeed = 1;
    w.lengthInstr = len;
    w.name = "ctrl";
    return w;
}

/** Always answers the same configuration. */
class ConstantPredictor : public GatePredictor
{
  public:
    explicit ConstantPredictor(bool gate) : gate_(gate) {}
    uint64_t granularity() const override { return 20000; }
    bool decide(const std::vector<const float *> &,
                const std::vector<float> &, CoreMode) override
    {
        return gate_;
    }
    uint32_t opsPerInference() const override { return 1; }
    std::string name() const override { return "constant"; }

  private:
    bool gate_;
};

/** Cheats: answers the ground-truth label for block b+2. */
class OraclePredictor : public GatePredictor
{
  public:
    OraclePredictor(std::vector<uint8_t> labels, uint64_t granularity)
        : labels_(std::move(labels)), granularity_(granularity)
    {}
    uint64_t granularity() const override { return granularity_; }
    bool decide(const std::vector<const float *> &,
                const std::vector<float> &, CoreMode) override
    {
        const size_t target = block_ + 2;
        ++block_;
        return target < labels_.size() && labels_[target];
    }
    uint32_t opsPerInference() const override { return 1; }
    std::string name() const override { return "oracle"; }

  private:
    std::vector<uint8_t> labels_;
    uint64_t granularity_;
    size_t block_ = 0;
};

} // namespace

TEST(ClosedLoop, AlwaysHighMatchesReference)
{
    const BuildConfig cfg = smallConfig();
    const Workload w = twoPhaseWorkload(300000);
    const TraceRecord ref = recordTrace(w, cfg, 0, 0);
    ConstantPredictor never_gate(false);
    const ClosedLoopResult r =
        runClosedLoop(w, ref, never_gate, cfg, SlaSpec{});
    EXPECT_DOUBLE_EQ(r.lowResidency, 0.0);
    EXPECT_NEAR(r.ppwGainPct, 0.0, 1.5);
    EXPECT_NEAR(r.perfRelativePct, 100.0, 1.5);
    EXPECT_EQ(r.modeSwitches, 0u);
}

TEST(ClosedLoop, AlwaysLowGatesEverythingAfterPipelineFill)
{
    const BuildConfig cfg = smallConfig();
    const Workload w = twoPhaseWorkload(300000);
    const TraceRecord ref = recordTrace(w, cfg, 0, 0);
    ConstantPredictor always_gate(true);
    const ClosedLoopResult r =
        runClosedLoop(w, ref, always_gate, cfg, SlaSpec{});
    // First two blocks default to high (pipeline fill, Fig. 3).
    const size_t blocks = ref.numIntervals() / 2;
    EXPECT_NEAR(r.lowResidency,
                1.0 - 2.0 / static_cast<double>(blocks), 1e-9);
}

TEST(ClosedLoop, OracleDeliversPpwWithoutViolations)
{
    const BuildConfig cfg = smallConfig();
    const Workload w = twoPhaseWorkload(400000);
    const TraceRecord ref = recordTrace(w, cfg, 0, 0);
    const auto labels = blockLabels(ref, 2, 0.90);
    OraclePredictor oracle(labels, 20000);
    const ClosedLoopResult r =
        runClosedLoop(w, ref, oracle, cfg, SlaSpec{});
    EXPECT_GT(r.ppwGainPct, 0.0);
    // Oracle predictions can still mismatch after transitions the
    // reference didn't see, but must be largely correct.
    EXPECT_GT(r.confusion.accuracy(), 0.8);
}

TEST(ClosedLoop, PredictionsAlignWithLabels)
{
    const BuildConfig cfg = smallConfig();
    const Workload w = twoPhaseWorkload(300000);
    const TraceRecord ref = recordTrace(w, cfg, 0, 0);
    ConstantPredictor always_gate(true);
    const ClosedLoopResult r =
        runClosedLoop(w, ref, always_gate, cfg, SlaSpec{});
    // Always-gate: every ground-truth no-gate block after warm-in
    // counts as a false positive.
    const auto labels = blockLabels(ref, 2, 0.90);
    size_t no_gate = 0;
    for (size_t b = 2; b < labels.size(); ++b)
        no_gate += labels[b] ? 0 : 1;
    EXPECT_EQ(r.confusion.falsePositive, no_gate);
}

TEST(ClosedLoop, PpwBetweenConstantBounds)
{
    // An oracle must beat never-gate and respect perf better than
    // always-gate.
    const BuildConfig cfg = smallConfig();
    const Workload w = twoPhaseWorkload(400000);
    const TraceRecord ref = recordTrace(w, cfg, 0, 0);

    ConstantPredictor always(true);
    const auto r_always = runClosedLoop(w, ref, always, cfg, SlaSpec{});
    const auto labels = blockLabels(ref, 2, 0.90);
    OraclePredictor oracle(labels, 20000);
    const auto r_oracle = runClosedLoop(w, ref, oracle, cfg, SlaSpec{});

    EXPECT_GE(r_oracle.perfRelativePct,
              r_always.perfRelativePct - 1e-9);
    EXPECT_LE(r_oracle.rsv, r_always.rsv);
    EXPECT_GE(r_oracle.ppwGainPct, 0.0);
}

TEST(ClosedLoop, UcOpsAccumulate)
{
    const BuildConfig cfg = smallConfig();
    const Workload w = twoPhaseWorkload(200000);
    const TraceRecord ref = recordTrace(w, cfg, 0, 0);
    ConstantPredictor p(false);
    const ClosedLoopResult r = runClosedLoop(w, ref, p, cfg, SlaSpec{});
    EXPECT_EQ(r.ucOps, r.numPredictions * p.opsPerInference());
    EXPECT_EQ(r.numPredictions, ref.numIntervals() / 2);
}
