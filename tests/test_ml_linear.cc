/**
 * @file
 * Tests for logistic regression (with L-BFGS), the linear-SVM
 * ensemble, and the chi-square kernel SVM.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "ml/linear.hh"
#include "ml/svm.hh"

using namespace psca;

namespace {

Dataset
linearData(size_t n, uint64_t seed, double noise = 0.0)
{
    Rng rng(seed);
    Dataset d;
    d.numFeatures = 3;
    for (size_t i = 0; i < n; ++i) {
        float row[3];
        for (auto &v : row)
            v = static_cast<float>(rng.gaussian());
        const double z = 2.0 * row[0] - row[1] + 0.5 * row[2] +
            rng.gaussian(0.0, noise);
        d.addSample(row, z > 0 ? 1 : 0, static_cast<uint32_t>(i % 3),
                    0);
    }
    return d;
}

double
accuracy(const Model &m, const Dataset &d)
{
    size_t correct = 0;
    for (size_t i = 0; i < d.numSamples(); ++i)
        correct += m.predict(d.row(i)) == (d.y[i] != 0) ? 1 : 0;
    return static_cast<double>(correct) /
        static_cast<double>(d.numSamples());
}

} // namespace

TEST(Lbfgs, MinimizesQuadratic)
{
    // f(x) = (x0-3)^2 + 2(x1+1)^2
    auto eval = [](const std::vector<double> &x,
                   std::vector<double> &g) {
        g[0] = 2.0 * (x[0] - 3.0);
        g[1] = 4.0 * (x[1] + 1.0);
        return (x[0] - 3.0) * (x[0] - 3.0) +
            2.0 * (x[1] + 1.0) * (x[1] + 1.0);
    };
    std::vector<double> x{0.0, 0.0};
    lbfgsMinimize(2, eval, x);
    EXPECT_NEAR(x[0], 3.0, 1e-5);
    EXPECT_NEAR(x[1], -1.0, 1e-5);
}

TEST(Lbfgs, MinimizesRosenbrock)
{
    auto eval = [](const std::vector<double> &x,
                   std::vector<double> &g) {
        const double a = 1.0 - x[0];
        const double b = x[1] - x[0] * x[0];
        g[0] = -2.0 * a - 400.0 * x[0] * b;
        g[1] = 200.0 * b;
        return a * a + 100.0 * b * b;
    };
    std::vector<double> x{-1.2, 1.0};
    lbfgsMinimize(2, eval, x, 2000, 10, 1e-14);
    EXPECT_NEAR(x[0], 1.0, 1e-2);
    EXPECT_NEAR(x[1], 1.0, 2e-2);
}

TEST(LogReg, RecoversLinearBoundary)
{
    const Dataset d = linearData(3000, 1);
    LogisticRegression lr(d, LogRegConfig{});
    EXPECT_GT(accuracy(lr, d), 0.97);
    // Coefficient directions match the generating weights.
    const auto &w = lr.coefficients();
    EXPECT_GT(w[0], 0.0);
    EXPECT_LT(w[1], 0.0);
    EXPECT_GT(w[2], 0.0);
}

TEST(LogReg, HandlesNoisyData)
{
    const Dataset d = linearData(3000, 2, 1.0);
    LogisticRegression lr(d, LogRegConfig{});
    EXPECT_GT(accuracy(lr, d), 0.80);
}

TEST(LogReg, OpsMatchPaperConvention)
{
    // 12 counters: 3*12 + 122 = 158 ops (paper Table 3).
    Dataset d;
    d.numFeatures = 12;
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        float row[12];
        for (auto &v : row)
            v = static_cast<float>(rng.gaussian());
        d.addSample(row, i % 2, 0, 0);
    }
    LogisticRegression lr(d, LogRegConfig{});
    EXPECT_EQ(lr.opsPerInference(), 158u);
    // SRCH-scale input (150 histogram features): 572 ops (Sec. 7).
    Dataset d2;
    d2.numFeatures = 150;
    std::vector<float> row(150, 0.0f);
    d2.addSample(row.data(), 0, 0, 0);
    row[0] = 1.0f;
    d2.addSample(row.data(), 1, 0, 0);
    LogisticRegression lr2(d2, LogRegConfig{});
    EXPECT_EQ(lr2.opsPerInference(), 572u);
}

TEST(LinearSvm, LearnsSeparableData)
{
    const Dataset d = linearData(2000, 4);
    LinearSvmConfig cfg;
    LinearSvmEnsemble svm(d, cfg);
    EXPECT_GT(accuracy(svm, d), 0.9);
}

TEST(LinearSvm, VoteScoreIsFraction)
{
    const Dataset d = linearData(500, 5);
    LinearSvmEnsemble svm(d, LinearSvmConfig{});
    for (size_t i = 0; i < 50; ++i) {
        const double s = svm.score(d.row(i));
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 1.0);
        // With 5 members, scores quantize to fifths.
        EXPECT_NEAR(s * 5.0, std::round(s * 5.0), 1e-9);
    }
}

TEST(Chi2Svm, LearnsNonLinearBoundary)
{
    // Ring dataset: inside vs outside a radius (not linearly
    // separable).
    Rng rng(6);
    Dataset d;
    d.numFeatures = 2;
    for (int i = 0; i < 1500; ++i) {
        float row[2] = {static_cast<float>(rng.uniform(0, 2)),
                        static_cast<float>(rng.uniform(0, 2))};
        const double r = (row[0] - 1.0) * (row[0] - 1.0) +
            (row[1] - 1.0) * (row[1] - 1.0);
        d.addSample(row, r < 0.3 ? 1 : 0, 0, 0);
    }
    Chi2SvmConfig cfg;
    cfg.maxSupportVectors = 400;
    cfg.gamma = 2.0;
    cfg.epochs = 10;
    Chi2Svm svm(d, cfg);
    // Budgeted Pegasos is a rougher fit than exact SMO; it must still
    // clearly beat the 50% chance line on this non-linear task.
    EXPECT_GT(accuracy(svm, d), 0.72);
}

TEST(Chi2Svm, RespectsSupportVectorBudget)
{
    const Dataset d = linearData(2000, 7, 2.0); // noisy
    Chi2SvmConfig cfg;
    cfg.maxSupportVectors = 100;
    Chi2Svm svm(d, cfg);
    EXPECT_LE(svm.numSupportVectors(), 100u);
}

TEST(Chi2Svm, OpsScaleWithSupportVectors)
{
    const Dataset d = linearData(800, 8, 1.5);
    Chi2SvmConfig cfg;
    cfg.maxSupportVectors = 50;
    Chi2Svm svm(d, cfg);
    EXPECT_EQ(svm.opsPerInference(),
              svm.numSupportVectors() * (8u * 3u + 25u));
}
