/**
 * @file
 * Distribution-layer tests (DESIGN.md §13): protocol frame
 * round-trip and corruption/oversize rejection over a socketpair,
 * fleet byte-identity (a coordinator + 4 workers produce the same
 * corpus cache and result artifact as a single process), worker-loss
 * recovery (SIGKILL one worker mid-campaign; the campaign completes
 * with units reassigned and artifacts still byte-identical),
 * coordinator crash-resume (SIGKILL the coordinator mid-scope; a
 * replacement replays the journal, the workers rejoin, artifacts
 * still byte-identical), and duplicate-Result idempotency
 * (net.dup_result at rate 1 delivers every Result twice; the
 * coordinator dedupes by unit index).
 *
 * Same fork discipline as test_runner.cc: the parent process never
 * touches the ThreadPool, SimMemo, or Journal singletons — every
 * pipeline runs in a forked child that _exit()s. Fleet children set
 * their PSCA_DIST_* role env vars after the fork, so the parent's
 * environment never arms the distribution layer.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/journal.hh"
#include "core/pipeline.hh"
#include "core/runner.hh"
#include "dist/protocol.hh"
#include "obs/report.hh"
#include "telemetry/counters.hh"
#include "trace/genome.hh"

using namespace psca;
using namespace psca::dist;
namespace fs = std::filesystem;

namespace {

// ---- Protocol frames ----------------------------------------------

TEST(DistProtocol, FrameRoundTrip)
{
    int fds[2] = {-1, -1};
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    // A payload with embedded NULs and every byte value.
    std::string payload;
    for (int i = 0; i < 1024; ++i)
        payload.push_back(static_cast<char>(i & 0xff));
    ASSERT_TRUE(sendFrame(fds[0], Msg::Result, payload));
    ASSERT_TRUE(sendFrame(fds[0], Msg::Heartbeat, ""));

    Frame f;
    ASSERT_EQ(recvFrame(fds[1], f), RecvStatus::Ok);
    EXPECT_EQ(f.type, Msg::Result);
    EXPECT_EQ(f.payload, payload);
    ASSERT_EQ(recvFrame(fds[1], f), RecvStatus::Ok);
    EXPECT_EQ(f.type, Msg::Heartbeat);
    EXPECT_TRUE(f.payload.empty());

    // Orderly close is a clean frame boundary.
    close(fds[0]);
    EXPECT_EQ(recvFrame(fds[1], f), RecvStatus::Closed);
    close(fds[1]);
}

/** Raw wire image of one frame, for byte-level tampering. */
std::vector<uint8_t>
rawFrame(Msg type, const std::string &payload)
{
    const uint8_t t = static_cast<uint8_t>(type);
    const uint32_t len = static_cast<uint32_t>(payload.size());
    std::vector<uint8_t> frame(4 + 1 + 4 + payload.size() + 8);
    size_t off = 0;
    std::memcpy(frame.data() + off, &kFrameMagic, 4);
    off += 4;
    frame[off++] = t;
    std::memcpy(frame.data() + off, &len, 4);
    off += 4;
    std::memcpy(frame.data() + off, payload.data(), payload.size());
    off += payload.size();
    uint64_t sum = fnv1aUpdate(kFnv1aBasis, &t, sizeof(t));
    sum = fnv1aUpdate(sum, &len, sizeof(len));
    sum = fnv1aUpdate(sum, payload.data(), payload.size());
    std::memcpy(frame.data() + off, &sum, 8);
    return frame;
}

TEST(DistProtocol, CorruptionRejected)
{
    // Flipping any single byte of (magic, type, len, payload,
    // checksum) must yield Corrupt, never a quietly wrong frame.
    const std::vector<uint8_t> good = rawFrame(Msg::Assign, "units");
    for (size_t flip = 0; flip < good.size(); ++flip) {
        int fds[2] = {-1, -1};
        ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        std::vector<uint8_t> bad = good;
        bad[flip] ^= 0x01;
        ASSERT_TRUE(sendAll(fds[0], bad.data(), bad.size()));
        close(fds[0]);
        Frame f;
        EXPECT_EQ(recvFrame(fds[1], f), RecvStatus::Corrupt)
            << "flipped byte " << flip;
        close(fds[1]);
    }
}

TEST(DistProtocol, OversizedFrameRejected)
{
    // A header claiming a payload larger than the receiver's cap is
    // rejected from the header alone — the receiver never tries to
    // allocate or read the body, so a lying (or hostile) peer cannot
    // force a giant allocation.
    int fds[2] = {-1, -1};
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const uint8_t t = static_cast<uint8_t>(Msg::Result);
    const uint32_t len = 2u << 20;
    std::vector<uint8_t> header(9);
    std::memcpy(header.data(), &kFrameMagic, 4);
    header[4] = t;
    std::memcpy(header.data() + 5, &len, 4);
    ASSERT_TRUE(sendAll(fds[0], header.data(), header.size()));
    Frame f;
    EXPECT_EQ(recvFrame(fds[1], f, /*max_payload=*/1u << 20),
              RecvStatus::Oversized);
    close(fds[0]);
    close(fds[1]);
}

TEST(DistProtocol, TruncationRejected)
{
    // EOF mid-frame (a worker died mid-send) is Corrupt, not Closed.
    const std::vector<uint8_t> good = rawFrame(Msg::Data, "payload");
    for (size_t keep : {size_t{3}, size_t{9}, good.size() - 1}) {
        int fds[2] = {-1, -1};
        ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        ASSERT_TRUE(sendAll(fds[0], good.data(), keep));
        close(fds[0]);
        Frame f;
        EXPECT_EQ(recvFrame(fds[1], f), RecvStatus::Corrupt)
            << "kept " << keep << " bytes";
        close(fds[1]);
    }
}

// ---- Fleet byte-identity ------------------------------------------

// 12 units so a 3-worker fleet at PSCA_THREADS=4 assigns a full
// batch to EVERY worker — the kill test then always finds assigned
// units on the victim.
constexpr size_t kCorpusSize = 12;

std::string
scratchDir(const std::string &name)
{
    const std::string dir = "/tmp/psca_dist_test/" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::vector<char>
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

/**
 * The campaign body every fleet process runs (lockstep-redundant):
 * corpus record -> dataset -> forest fit -> scored result artifact.
 * Same shape as test_runner.cc's pipeline; the corpus and forest
 * scopes are the Distributed ones.
 */
int
childPipeline()
{
    obs::RunReportGuard report("dist_test_report");

    BuildConfig build;
    build.intervalInstr = 5000;
    build.warmupInstr = 10000;
    build.counterIds = {
        CounterRegistry::index(Ctr::InstRetired),
        CounterRegistry::index(Ctr::StallCount),
        CounterRegistry::index(Ctr::L1dMiss),
        CounterRegistry::index(Ctr::UopsStalledOnDep),
    };

    std::vector<Workload> fleet;
    std::vector<uint32_t> ids;
    for (uint64_t i = 0; i < kCorpusSize; ++i) {
        Workload w;
        w.genome =
            sampleGenome(static_cast<AppCategory>(i % 6), 700 + i);
        w.inputSeed = 1;
        w.lengthInstr = 300000;
        w.name = w.genome.name;
        fleet.push_back(std::move(w));
        ids.push_back(static_cast<uint32_t>(i));
    }
    const std::vector<TraceRecord> records =
        recordCorpus(fleet, ids, build, "dtest");

    AssemblyOptions ao;
    ao.granularityInstr = 5000;
    ao.pSla = 0.90;
    const Dataset ds =
        assembleDataset(records, ao, build.intervalInstr);

    ForestConfig fc;
    fc.numTrees = 8;
    fc.maxDepth = 6;
    fc.seed = 5;
    const RandomForest rf(ds, fc);

    uint64_t h = ds.contentHash();
    std::vector<double> scores(ds.numSamples());
    for (size_t i = 0; i < ds.numSamples(); ++i)
        scores[i] = rf.score(ds.row(i));
    h = fnv1aUpdate(h, scores.data(), scores.size() * sizeof(double));
    const bool ok = writeArtifactFile(
        cacheDirectory() + "/result.bin", [&](BinaryWriter &out) {
            out.put(h);
            out.put<uint64_t>(ds.numSamples());
        });
    return ok ? 0 : 1;
}

/**
 * Fork one fleet process. Roles are set AFTER the fork so the test
 * parent never arms the distribution layer. Workers journal nothing
 * (the coordinator owns the journal) and report into their own
 * subdirectory so they cannot clobber the coordinator's report.
 */
pid_t
forkFleetChild(const char *role, const std::string &dir, int workers,
               int worker_index,
               const std::vector<std::pair<std::string, std::string>>
                   &extra_env = {})
{
    std::fflush(nullptr);
    const pid_t pid = fork();
    if (pid != 0)
        return pid;
    setenv("PSCA_DIST_ROLE", role, 1);
    for (const auto &[k, v] : extra_env)
        setenv(k.c_str(), v.c_str(), 1);
    if (std::strcmp(role, "coordinator") == 0) {
        const std::string n = std::to_string(workers);
        setenv("PSCA_DIST_WORKERS", n.c_str(), 1);
    } else {
        setenv("PSCA_JOURNAL", "0", 1);
        const std::string rdir =
            dir + "/w" + std::to_string(worker_index);
        fs::create_directories(rdir);
        setenv("PSCA_REPORT_DIR", rdir.c_str(), 1);
    }
    _exit(runner::guardedMain([] { return childPipeline(); }));
}

/** Single-process reference run (no distribution). */
int
runLocalToCompletion()
{
    std::fflush(nullptr);
    const pid_t pid = fork();
    if (pid == 0)
        _exit(runner::guardedMain([] { return childPipeline(); }));
    int status = 0;
    waitpid(pid, &status, 0);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/** Pull one "name": value number out of a run-report JSON file. */
double
reportValue(const std::string &path, const std::string &name)
{
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const std::string key = "\"" + name + "\":";
    const size_t at = text.find(key);
    if (at == std::string::npos)
        return -1.0;
    return std::strtod(text.c_str() + at + key.size(), nullptr);
}

/** All files in @p dir whose names contain @p needle, sorted. */
std::vector<std::string>
filesContaining(const std::string &dir, const std::string &needle)
{
    std::vector<std::string> names;
    for (const auto &e : fs::directory_iterator(dir))
        if (e.path().filename().string().find(needle) !=
            std::string::npos)
            names.push_back(e.path().filename().string());
    std::sort(names.begin(), names.end());
    return names;
}

void
expectArtifactsIdentical(const std::string &dir,
                         const std::string &ref_dir)
{
    EXPECT_EQ(slurp(dir + "/result.bin"),
              slurp(ref_dir + "/result.bin"));
    const std::vector<std::string> caches =
        filesContaining(ref_dir, "dtest_");
    ASSERT_FALSE(caches.empty());
    EXPECT_EQ(filesContaining(dir, "dtest_"), caches);
    for (const std::string &name : caches)
        EXPECT_EQ(slurp(dir + "/" + name),
                  slurp(ref_dir + "/" + name))
            << name;
}

TEST(DistFleet, FourWorkersByteIdenticalToSingleProcess)
{
    setenv("PSCA_THREADS", "2", 1);

    const std::string ref_dir = scratchDir("fleet4_ref");
    setenv("PSCA_CACHE_DIR", ref_dir.c_str(), 1);
    setenv("PSCA_REPORT_DIR", ref_dir.c_str(), 1);
    ASSERT_EQ(runLocalToCompletion(), 0);

    const std::string dir = scratchDir("fleet4");
    setenv("PSCA_CACHE_DIR", dir.c_str(), 1);
    setenv("PSCA_REPORT_DIR", dir.c_str(), 1);
    constexpr int kWorkers = 4;
    const pid_t coord = forkFleetChild("coordinator", dir, kWorkers, 0);
    std::vector<pid_t> workers;
    for (int i = 1; i <= kWorkers; ++i)
        workers.push_back(forkFleetChild("worker", dir, kWorkers, i));

    int status = 0;
    ASSERT_EQ(waitpid(coord, &status, 0), coord);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
    for (pid_t w : workers) {
        ASSERT_EQ(waitpid(w, &status, 0), w);
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 0) << "worker " << w;
    }

    expectArtifactsIdentical(dir, ref_dir);

    // The fleet actually distributed: the coordinator journaled
    // worker results, and its report says so.
    const std::string report = dir + "/dist_test_report.json";
    EXPECT_GE(reportValue(report, "dist.units_completed"),
              static_cast<double>(kCorpusSize)) << report;
    EXPECT_GE(reportValue(report, "dist.scopes_served"), 2.0);
}

TEST(DistFleet, WorkerKilledMidCampaignIsReassigned)
{
    setenv("PSCA_THREADS", "4", 1);

    const std::string ref_dir = scratchDir("kill_ref");
    setenv("PSCA_CACHE_DIR", ref_dir.c_str(), 1);
    setenv("PSCA_REPORT_DIR", ref_dir.c_str(), 1);
    ASSERT_EQ(runLocalToCompletion(), 0);

    const std::string dir = scratchDir("kill");
    setenv("PSCA_CACHE_DIR", dir.c_str(), 1);
    setenv("PSCA_REPORT_DIR", dir.c_str(), 1);
    constexpr int kWorkers = 3;
    const pid_t coord = forkFleetChild("coordinator", dir, kWorkers, 0);
    std::vector<pid_t> workers;
    for (int i = 1; i <= kWorkers; ++i)
        workers.push_back(forkFleetChild("worker", dir, kWorkers, i));

    // SIGKILL the first worker as soon as the first result lands in
    // the coordinator's journal: with batch assignment (up to
    // PSCA_THREADS units per worker) it still holds assigned units,
    // which the coordinator must hand to the survivors.
    const std::string journal_path = dir + "/journal.psj";
    bool killed = false;
    for (int spins = 0; spins < 120000; ++spins) {
        if (Journal::countEntries(journal_path) >= 1) {
            kill(workers[0], SIGKILL);
            killed = true;
            break;
        }
        int status = 0;
        if (waitpid(coord, &status, WNOHANG) == coord) {
            ADD_FAILURE() << "coordinator exited before first result";
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(killed);

    int status = 0;
    ASSERT_EQ(waitpid(coord, &status, 0), coord);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
    for (pid_t w : workers)
        waitpid(w, &status, 0); // killed one included; others exit 0

    expectArtifactsIdentical(dir, ref_dir);

    const std::string report = dir + "/dist_test_report.json";
    EXPECT_GE(reportValue(report, "dist.workers_lost"), 1.0);
    EXPECT_GE(reportValue(report, "dist.units_reassigned"), 1.0);
}

TEST(DistFleet, CoordinatorKilledAndRestartedMidScope)
{
    setenv("PSCA_THREADS", "2", 1);

    const std::string ref_dir = scratchDir("crash_ref");
    setenv("PSCA_CACHE_DIR", ref_dir.c_str(), 1);
    setenv("PSCA_REPORT_DIR", ref_dir.c_str(), 1);
    ASSERT_EQ(runLocalToCompletion(), 0);

    const std::string dir = scratchDir("crash");
    setenv("PSCA_CACHE_DIR", dir.c_str(), 1);
    setenv("PSCA_REPORT_DIR", dir.c_str(), 1);
    constexpr int kWorkers = 2;
    // Workers get a deep rejoin budget so none degrades to local
    // execution while the replacement coordinator boots.
    const std::vector<std::pair<std::string, std::string>> wenv = {
        {"PSCA_DIST_RETRIES", "10"}};
    pid_t coord = forkFleetChild("coordinator", dir, kWorkers, 0);
    std::vector<pid_t> workers;
    for (int i = 1; i <= kWorkers; ++i)
        workers.push_back(
            forkFleetChild("worker", dir, kWorkers, i, wenv));

    // SIGKILL the coordinator once the first unit result is
    // journaled — mid-scope by construction. The journal survives,
    // the address file survives (only an orderly shutdown withdraws
    // it), so a replacement resumes the scope and the workers rejoin
    // through the republished address.
    const std::string journal_path = dir + "/journal.psj";
    bool killed = false;
    for (int spins = 0; spins < 120000; ++spins) {
        if (Journal::countEntries(journal_path) >= 1) {
            kill(coord, SIGKILL);
            killed = true;
            break;
        }
        int status = 0;
        if (waitpid(coord, &status, WNOHANG) == coord) {
            ADD_FAILURE() << "coordinator exited before first result";
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(killed);
    int status = 0;
    ASSERT_EQ(waitpid(coord, &status, 0), coord);
    ASSERT_TRUE(WIFSIGNALED(status));

    coord = forkFleetChild("coordinator", dir, kWorkers, 0);
    ASSERT_EQ(waitpid(coord, &status, 0), coord);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
    for (pid_t w : workers) {
        ASSERT_EQ(waitpid(w, &status, 0), w);
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 0) << "worker " << w;
    }

    expectArtifactsIdentical(dir, ref_dir);

    // The replacement's report is the one on disk: it must have seen
    // the workers come back (Hello with a previous id) and no worker
    // may have fallen back to local execution.
    const std::string report = dir + "/dist_test_report.json";
    EXPECT_GE(reportValue(report, "dist.rejoins"), 1.0) << report;
    for (int i = 1; i <= kWorkers; ++i)
        EXPECT_EQ(reportValue(dir + "/w" + std::to_string(i) +
                                  "/dist_test_report.json",
                              "dist.local_fallbacks"),
                  -1.0)
            << "worker " << i << " degraded to local execution";
}

TEST(DistFleet, DuplicateResultsAreIdempotent)
{
    setenv("PSCA_THREADS", "2", 1);

    const std::string ref_dir = scratchDir("dup_ref");
    setenv("PSCA_CACHE_DIR", ref_dir.c_str(), 1);
    setenv("PSCA_REPORT_DIR", ref_dir.c_str(), 1);
    ASSERT_EQ(runLocalToCompletion(), 0);

    const std::string dir = scratchDir("dup");
    setenv("PSCA_CACHE_DIR", dir.c_str(), 1);
    setenv("PSCA_REPORT_DIR", dir.c_str(), 1);
    constexpr int kWorkers = 2;
    // Every Result is delivered twice (rate 1): the coordinator must
    // Ack both copies but journal the unit once, first-write-wins.
    const std::vector<std::pair<std::string, std::string>> wenv = {
        {"PSCA_FAULTS", "net.dup_result:1"}};
    const pid_t coord = forkFleetChild("coordinator", dir, kWorkers, 0);
    std::vector<pid_t> workers;
    for (int i = 1; i <= kWorkers; ++i)
        workers.push_back(
            forkFleetChild("worker", dir, kWorkers, i, wenv));

    int status = 0;
    ASSERT_EQ(waitpid(coord, &status, 0), coord);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
    for (pid_t w : workers) {
        ASSERT_EQ(waitpid(w, &status, 0), w);
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 0) << "worker " << w;
    }

    expectArtifactsIdentical(dir, ref_dir);

    const std::string report = dir + "/dist_test_report.json";
    EXPECT_GE(reportValue(report, "dist.duplicate_results"), 1.0)
        << report;
}

} // namespace
