/**
 * @file
 * Tests for the microcontroller substrate: the firmware VM, the
 * model-to-firmware compilers (compiled programs must reproduce
 * native model scores and advertised op costs), and the Sec. 5
 * budget arithmetic.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ml/linear.hh"
#include "ml/mlp.hh"
#include "ml/tree.hh"
#include "uc/budget.hh"
#include "uc/compilers.hh"
#include "uc/vm.hh"

using namespace psca;

namespace {

Dataset
randomData(size_t n, size_t features, uint64_t seed)
{
    Rng rng(seed);
    Dataset d;
    d.numFeatures = features;
    std::vector<float> row(features);
    for (size_t i = 0; i < n; ++i) {
        float acc = 0.0f;
        for (size_t j = 0; j < features; ++j) {
            row[j] = static_cast<float>(rng.gaussian());
            acc += (j % 2 ? 1.0f : -1.0f) * row[j];
        }
        d.addSample(row.data(), acc > 0 ? 1 : 0, 0, 0);
    }
    return d;
}

} // namespace

TEST(UcVm, BasicArithmetic)
{
    UcProgram prog;
    prog.numInputs = 2;
    prog.code = {
        {UcOpcode::LoadInput, 0, 0},
        {UcOpcode::LoadInput, 1, 1},
        {UcOpcode::Add, 2, 0, 1},
        {UcOpcode::LoadImm, 3, 0, 0, 2.0f},
        {UcOpcode::Mul, 2, 2, 3},
        {UcOpcode::Halt, 2},
    };
    UcVm vm;
    const float in[2] = {3.0f, 4.0f};
    EXPECT_DOUBLE_EQ(vm.run(prog, in, 2), 14.0);
    EXPECT_EQ(vm.opsExecuted(), 5u);
}

TEST(UcVm, MacroOpCosts)
{
    EXPECT_EQ(UcVm::opCost(UcOpcode::Relu), 6u);
    EXPECT_EQ(UcVm::opCost(UcOpcode::Exp), 122u);
    EXPECT_EQ(UcVm::opCost(UcOpcode::Add), 1u);
    EXPECT_EQ(UcVm::opCost(UcOpcode::Halt), 0u);
}

TEST(UcVm, IndexedAddressing)
{
    UcProgram prog;
    prog.numInputs = 3;
    prog.mem = {10.0f, 20.0f, 30.0f};
    prog.code = {
        {UcOpcode::ILoadImm, 0, 0, 0, 0.0f, 2},
        {UcOpcode::LoadMemInd, 1, 0, 0, 0.0f, 0, 0}, // mem[2]
        {UcOpcode::LoadInputInd, 2, 0},              // input[2]
        {UcOpcode::Add, 1, 1, 2},
        {UcOpcode::Halt, 1},
    };
    UcVm vm;
    const float in[3] = {1.0f, 2.0f, 5.0f};
    EXPECT_DOUBLE_EQ(vm.run(prog, in, 3), 35.0);
}

class CompiledMlp
    : public ::testing::TestWithParam<std::vector<int>>
{};

TEST_P(CompiledMlp, MatchesNativeScores)
{
    const Dataset d = randomData(600, 12, 21);
    MlpConfig cfg;
    cfg.hiddenLayers = GetParam();
    cfg.epochs = 8;
    auto model = trainMlp(d, cfg);

    const UcProgram prog = compileMlp(*model);
    UcVm vm;
    for (size_t i = 0; i < 100; ++i) {
        const double native = model->score(d.row(i));
        const double fw = vm.run(prog, d.row(i), 12);
        EXPECT_NEAR(fw, native, 1e-4) << "sample " << i;
    }
}

TEST_P(CompiledMlp, OpCountNearAdvertised)
{
    const Dataset d = randomData(200, 12, 22);
    MlpConfig cfg;
    cfg.hiddenLayers = GetParam();
    cfg.epochs = 2;
    auto model = trainMlp(d, cfg);

    const UcProgram prog = compileMlp(*model);
    UcVm vm;
    vm.run(prog, d.row(0), 12);
    // The Table 3 accounting folds the scalar readout into the last
    // layer; the compiled program carries it explicitly plus the
    // input prologue, so allow a modest margin.
    const double advertised = model->opsPerInference();
    EXPECT_GT(vm.opsExecuted(), 0.8 * advertised);
    EXPECT_LT(vm.opsExecuted(), 1.6 * advertised + 200);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, CompiledMlp,
    ::testing::Values(std::vector<int>{10}, std::vector<int>{8, 8, 4},
                      std::vector<int>{32, 32, 16},
                      std::vector<int>{4}, std::vector<int>{16, 8}));

class CompiledForest : public ::testing::TestWithParam<int>
{};

TEST_P(CompiledForest, MatchesNativeScores)
{
    const Dataset d = randomData(800, 12, 23);
    ForestConfig fc;
    fc.numTrees = GetParam();
    fc.maxDepth = 6;
    RandomForest forest(d, fc);

    const UcProgram prog = compileForest(forest);
    UcVm vm;
    for (size_t i = 0; i < 200; ++i) {
        const double native = forest.score(d.row(i));
        const double fw = vm.run(prog, d.row(i), 12);
        EXPECT_NEAR(fw, native, 1e-5) << "sample " << i;
    }
}

TEST_P(CompiledForest, ConstantCostPerPrediction)
{
    // Padded branch-free trees: every input costs the same ops.
    const Dataset d = randomData(400, 12, 24);
    ForestConfig fc;
    fc.numTrees = GetParam();
    fc.maxDepth = 6;
    RandomForest forest(d, fc);
    const UcProgram prog = compileForest(forest);
    UcVm vm;
    vm.run(prog, d.row(0), 12);
    const uint64_t first = vm.opsExecuted();
    for (size_t i = 1; i < 50; ++i) {
        vm.run(prog, d.row(i), 12);
        EXPECT_EQ(vm.opsExecuted(), first);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompiledForest,
                         ::testing::Values(1, 4, 8, 16));

TEST(CompiledLogistic, MatchesNative)
{
    const Dataset d = randomData(600, 12, 25);
    LogisticRegression lr(d, LogRegConfig{});
    const UcProgram prog = compileLogistic(lr);
    UcVm vm;
    for (size_t i = 0; i < 100; ++i) {
        EXPECT_NEAR(vm.run(prog, d.row(i), 12), lr.score(d.row(i)),
                    1e-5);
    }
}

TEST(CompiledLogistic, OpCountNearAdvertised)
{
    const Dataset d = randomData(100, 12, 26);
    LogisticRegression lr(d, LogRegConfig{});
    const UcProgram prog = compileLogistic(lr);
    UcVm vm;
    vm.run(prog, d.row(0), 12);
    EXPECT_NEAR(static_cast<double>(vm.opsExecuted()),
                static_cast<double>(lr.opsPerInference()), 30.0);
}

// ---- Sec. 5 budget table ---------------------------------------------

TEST(Budget, Table3LeftColumn)
{
    const UcBudget b;
    // Granularity -> (max uC ops, prediction budget), per Table 3.
    struct Row { uint64_t l, max, budget; };
    const Row rows[] = {
        {10000, 312, 156},  {20000, 625, 312},  {30000, 937, 468},
        {40000, 1250, 625}, {50000, 1562, 781}, {60000, 1875, 937},
        {100000, 3125, 1562},
    };
    for (const auto &r : rows) {
        EXPECT_EQ(b.maxOps(r.l), r.max) << r.l;
        EXPECT_EQ(b.opsBudget(r.l), r.budget) << r.l;
    }
}

TEST(Budget, FinestGranularityForPaperModels)
{
    const UcBudget b;
    // CHARSTAR-equivalent (292 ops) fits at 20k (Sec. 7).
    EXPECT_EQ(b.finestGranularity(292), 20000u);
    // Best MLP (678 ops) fits at 50k.
    EXPECT_EQ(b.finestGranularity(678), 50000u);
    // Best RF (538 ops) fits at 40k.
    EXPECT_EQ(b.finestGranularity(538), 40000u);
    // SRCH (572 ops) fits at 40k.
    EXPECT_EQ(b.finestGranularity(572), 40000u);
    // A depth-16 tree (133 ops) fits at the finest 10k interval.
    EXPECT_EQ(b.finestGranularity(133), 10000u);
}

TEST(Budget, ChiSquareSvmDoesNotFit)
{
    // 121k ops exceeds even the 10M-instruction budget? No: 10M/64 =
    // 156k ops, so it fits only at multi-million granularities.
    const UcBudget b;
    const uint64_t g = b.finestGranularity(121000);
    EXPECT_GT(g, 1000000u);
}

TEST(Budget, ImageSizeReported)
{
    const Dataset d = randomData(100, 12, 27);
    MlpConfig cfg;
    cfg.hiddenLayers = {8, 8, 4};
    cfg.epochs = 1;
    auto model = trainMlp(d, cfg);
    const UcProgram prog = compileMlp(*model);
    EXPECT_GT(prog.imageBytes(), 0u);
    EXPECT_EQ(prog.staticOpCount(),
              [&] {
                  UcVm vm;
                  vm.run(prog, d.row(0), 12);
                  return vm.opsExecuted();
              }());
}
