/**
 * @file
 * Tests for the pipeline-facing APIs: counter plans, scale config,
 * dataset utilities, and the feature scaler.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/rng.hh"
#include "core/pipeline.hh"

using namespace psca;

TEST(CounterPlan, RecordsRankedPlusExpert)
{
    std::vector<uint16_t> ranked{5, 9, 13, 2};
    const CounterPlan plan = makeCounterPlan(ranked);
    // All PF-ranked ids first, in order.
    for (size_t i = 0; i < ranked.size(); ++i)
        EXPECT_EQ(plan.recordIds[i], ranked[i]);
    // Every expert counter present exactly once.
    for (uint16_t id : charstarCounterIds()) {
        EXPECT_EQ(std::count(plan.recordIds.begin(),
                             plan.recordIds.end(), id),
                  1);
    }
}

TEST(CounterPlan, ColumnsResolve)
{
    std::vector<uint16_t> ranked{5, 9, 13};
    const CounterPlan plan = makeCounterPlan(ranked);
    const auto cols = plan.pfColumns(2);
    EXPECT_EQ(cols, (std::vector<size_t>{0, 1}));
    EXPECT_EQ(plan.columnOf(13), 2u);
    const auto expert = plan.charstarColumns();
    EXPECT_EQ(expert.size(), charstarCounterIds().size());
}

TEST(CounterPlan, TooManyRequestedIsFatal)
{
    // Re-exec instead of fork: the suite's earlier tests started the
    // thread pool, and forking a threaded process can deadlock the
    // death-test child (seen under UBSan's shifted timing).
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const CounterPlan plan = makeCounterPlan({1, 2});
    EXPECT_DEATH(plan.pfColumns(5), "not enough PF counters");
}

TEST(ScaleConfig, EnvSelectsProfiles)
{
    setenv("PSCA_SCALE", "quick", 1);
    const ScaleConfig quick = ScaleConfig::fromEnv();
    setenv("PSCA_SCALE", "full", 1);
    const ScaleConfig full = ScaleConfig::fromEnv();
    setenv("PSCA_SCALE", "default", 1);
    const ScaleConfig def = ScaleConfig::fromEnv();
    unsetenv("PSCA_SCALE");

    EXPECT_LT(quick.hdtrApps, def.hdtrApps);
    EXPECT_LT(quick.hdtrTraceLen, def.hdtrTraceLen);
    EXPECT_GT(full.hdtrTraceLen, def.hdtrTraceLen);
    EXPECT_GT(full.folds, def.folds);
    EXPECT_EQ(full.folds, 32); // the paper's fold count
}

TEST(Dataset, SubsetPreservesMetadata)
{
    Dataset d;
    d.numFeatures = 2;
    for (int i = 0; i < 10; ++i) {
        const float row[2] = {static_cast<float>(i), 0.0f};
        d.addSample(row, i % 2, static_cast<uint32_t>(i / 3),
                    static_cast<uint32_t>(i));
    }
    const Dataset s = d.subset({1, 4, 9});
    ASSERT_EQ(s.numSamples(), 3u);
    EXPECT_FLOAT_EQ(s.row(1)[0], 4.0f);
    EXPECT_EQ(s.y[2], 1);
    EXPECT_EQ(s.appId[1], 1u);
    EXPECT_EQ(s.traceId[2], 9u);
}

TEST(Dataset, PositiveRate)
{
    Dataset d;
    d.numFeatures = 1;
    const float row[1] = {0.0f};
    d.addSample(row, 1, 0, 0);
    d.addSample(row, 0, 0, 0);
    d.addSample(row, 1, 0, 0);
    d.addSample(row, 1, 0, 0);
    EXPECT_DOUBLE_EQ(d.positiveRate(), 0.75);
}

TEST(FeatureScaler, ZScoresColumns)
{
    Dataset d;
    d.numFeatures = 2;
    for (int i = 0; i < 100; ++i) {
        const float row[2] = {static_cast<float>(i),
                              42.0f /* constant */};
        d.addSample(row, 0, 0, 0);
    }
    const FeatureScaler scaler = FeatureScaler::fit(d);
    const Dataset scaled = scaler.apply(d);
    // Column 0: zero mean, unit-ish variance.
    double sum = 0.0, sum_sq = 0.0;
    for (size_t i = 0; i < 100; ++i) {
        sum += scaled.row(i)[0];
        sum_sq += scaled.row(i)[0] * scaled.row(i)[0];
    }
    EXPECT_NEAR(sum / 100.0, 0.0, 1e-5);
    EXPECT_NEAR(sum_sq / 100.0, 1.0, 1e-3);
    // Constant column maps to exactly zero (no NaN/inf).
    for (size_t i = 0; i < 100; ++i)
        EXPECT_FLOAT_EQ(scaled.row(i)[1], 0.0f);
}

TEST(FeatureScaler, ApplyRowMatchesApply)
{
    Dataset d;
    d.numFeatures = 3;
    Rng rng(8);
    for (int i = 0; i < 50; ++i) {
        float row[3];
        for (auto &v : row)
            v = static_cast<float>(rng.gaussian(5, 2));
        d.addSample(row, 0, 0, 0);
    }
    const FeatureScaler scaler = FeatureScaler::fit(d);
    const Dataset scaled = scaler.apply(d);
    float out[3];
    scaler.applyRow(d.row(7), out);
    for (int j = 0; j < 3; ++j)
        EXPECT_FLOAT_EQ(out[j], scaled.row(7)[j]);
}
