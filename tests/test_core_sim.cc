/**
 * @file
 * Tests and property sweeps for the clustered core timing model:
 * per-kernel IPC-ratio invariants (the labels everything else is
 * built on), counter consistency, mode-switch costs, determinism.
 */

#include <gtest/gtest.h>

#include "sim/core.hh"
#include "trace/generator.hh"

using namespace psca;

namespace {

Workload
kernelWorkload(KernelParams kp, uint64_t seed = 42)
{
    AppGenome g;
    g.name = "sim_test";
    g.seed = seed;
    PhaseSpec p;
    p.kernel = kp;
    p.meanLenInstr = 1e9;
    g.phases = {p};
    Workload w;
    w.genome = g;
    w.inputSeed = 1;
    w.lengthInstr = 400000;
    w.name = "sim_test";
    return w;
}

/** Run warmup + measurement in one mode; return IPC. */
double
ipcOf(const Workload &w, CoreMode mode, uint64_t warm = 60000,
      uint64_t measure = 150000)
{
    ClusteredCore core;
    core.reset();
    core.setMode(mode);
    TraceGenerator gen(w);
    core.run(gen, warm);
    const uint64_t c0 = core.currentCycle();
    core.run(gen, measure);
    return static_cast<double>(measure) /
        static_cast<double>(core.currentCycle() - c0);
}

struct RatioCase
{
    const char *name;
    KernelParams kernel;
    double minRatio;
    double maxRatio;
};

} // namespace

class KernelRatio : public ::testing::TestWithParam<RatioCase>
{};

TEST_P(KernelRatio, LowOverHighIpcInExpectedBand)
{
    const RatioCase &c = GetParam();
    const Workload w = kernelWorkload(c.kernel);
    const double high = ipcOf(w, CoreMode::HighPerf);
    const double low = ipcOf(w, CoreMode::LowPower);
    const double ratio = low / high;
    EXPECT_GE(ratio, c.minRatio) << c.name;
    EXPECT_LE(ratio, c.maxRatio) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Bands, KernelRatio,
    ::testing::Values(
        // Width-hungry kernels lose badly when gated.
        RatioCase{"ilp14", {.kind = KernelKind::Ilp, .chains = 14},
                  0.40, 0.75},
        RatioCase{"ilp10fp",
                  {.kind = KernelKind::Ilp, .chains = 10, .fp = true},
                  0.40, 0.75},
        RatioCase{"stream_hot",
                  {.kind = KernelKind::Stream,
                   .workingSetBytes = 64 << 10, .computePerElem = 5},
                  0.35, 0.75},
        RatioCase{"mlp_rich",
                  {.kind = KernelKind::MlpRich,
                   .workingSetBytes = 64 << 20, .computePerElem = 1,
                   .mlpDegree = 12},
                  0.45, 0.85},
        // Gating-friendly kernels barely notice.
        RatioCase{"ilp3", {.kind = KernelKind::Ilp, .chains = 3},
                  0.92, 1.05},
        RatioCase{"fp_serial", {.kind = KernelKind::FpSerial,
                                .fp = true},
                  0.92, 1.05},
        RatioCase{"chase_dram",
                  {.kind = KernelKind::PointerChase,
                   .workingSetBytes = 64 << 20},
                  0.95, 1.05},
        RatioCase{"chase_multi",
                  {.kind = KernelKind::PointerChase,
                   .workingSetBytes = 64 << 20, .chains = 8},
                  0.92, 1.05},
        RatioCase{"stream_dram",
                  {.kind = KernelKind::Stream,
                   .workingSetBytes = 128 << 20, .computePerElem = 2,
                   .fp = true},
                  0.92, 1.05},
        RatioCase{"branchy",
                  {.kind = KernelKind::Branchy,
                   .workingSetBytes = 512 << 10,
                   .predictability = 0.85},
                  0.92, 1.05}));

TEST(CoreSim, InstructionCountsExact)
{
    ClusteredCore core;
    core.reset();
    const Workload w =
        kernelWorkload({.kind = KernelKind::Ilp, .chains = 4});
    TraceGenerator gen(w);
    core.run(gen, 50000);
    EXPECT_EQ(core.counters().value(Ctr::InstRetired), 50000u);
    EXPECT_EQ(core.counters().value(Ctr::UopsRetired), 50000u);
    EXPECT_EQ(core.counters().value(Ctr::UopsIssuedTotal), 50000u);
}

TEST(CoreSim, CycleCounterMatchesHorizon)
{
    ClusteredCore core;
    core.reset();
    const Workload w =
        kernelWorkload({.kind = KernelKind::Branchy,
                        .workingSetBytes = 1 << 20});
    TraceGenerator gen(w);
    core.run(gen, 20000);
    core.run(gen, 20000);
    EXPECT_EQ(core.counters().value(Ctr::Cycles), core.currentCycle());
}

TEST(CoreSim, LowPowerModeUsesOnlyCluster0)
{
    ClusteredCore core;
    core.reset();
    core.setMode(CoreMode::LowPower);
    const Workload w =
        kernelWorkload({.kind = KernelKind::Ilp, .chains = 12});
    TraceGenerator gen(w);
    core.run(gen, 30000);
    const auto &reg = CounterRegistry::instance();
    EXPECT_EQ(core.counters().value(
                  reg.index(ClusterCtr::UopsIssued, 1)),
              0u);
    EXPECT_GT(core.counters().value(Ctr::GatedCycles), 0u);
}

TEST(CoreSim, HighPerfModeUsesBothClusters)
{
    ClusteredCore core;
    core.reset();
    const Workload w =
        kernelWorkload({.kind = KernelKind::Ilp, .chains = 12});
    TraceGenerator gen(w);
    core.run(gen, 30000);
    const auto &reg = CounterRegistry::instance();
    EXPECT_GT(core.counters().value(
                  reg.index(ClusterCtr::UopsIssued, 0)),
              5000u);
    EXPECT_GT(core.counters().value(
                  reg.index(ClusterCtr::UopsIssued, 1)),
              5000u);
}

TEST(CoreSim, ModeSwitchCountsAndCosts)
{
    ClusteredCore core;
    core.reset();
    const Workload w =
        kernelWorkload({.kind = KernelKind::Ilp, .chains = 6});
    TraceGenerator gen(w);
    core.run(gen, 10000);
    core.setMode(CoreMode::LowPower);
    core.run(gen, 10000);
    core.setMode(CoreMode::HighPerf);
    core.run(gen, 10000);
    EXPECT_EQ(core.counters().value(Ctr::ModeSwitches), 2u);
}

TEST(CoreSim, SwitchOverheadIsSmall)
{
    // Gating transitions must cost tens of cycles, not thousands
    // (Sec. 3: ~0.1% worst case at 10k-instruction granularity).
    const Workload w =
        kernelWorkload({.kind = KernelKind::Ilp, .chains = 4});

    ClusteredCore steady;
    steady.reset();
    steady.setMode(CoreMode::LowPower);
    TraceGenerator g1(w);
    steady.run(g1, 200000);
    const uint64_t steady_cycles = steady.currentCycle();

    ClusteredCore toggling;
    toggling.reset();
    toggling.setMode(CoreMode::LowPower);
    TraceGenerator g2(w);
    for (int i = 0; i < 20; ++i) {
        // Toggle to high and back every 10k instructions.
        toggling.setMode(i % 2 ? CoreMode::LowPower
                               : CoreMode::HighPerf);
        toggling.run(g2, 10000);
    }
    // Toggled run can only be faster (high mode helps) or slightly
    // slower than steady low power; it must not blow up.
    EXPECT_LT(toggling.currentCycle(),
              static_cast<uint64_t>(1.05 * steady_cycles));
}

TEST(CoreSim, DeterministicAcrossRuns)
{
    const Workload w = kernelWorkload(
        {.kind = KernelKind::Stencil, .workingSetBytes = 4 << 20});
    uint64_t cycles[2];
    for (int r = 0; r < 2; ++r) {
        ClusteredCore core;
        core.reset();
        TraceGenerator gen(w);
        core.run(gen, 60000);
        cycles[r] = core.currentCycle();
    }
    EXPECT_EQ(cycles[0], cycles[1]);
}

TEST(CoreSim, ResetClearsState)
{
    ClusteredCore core;
    const Workload w =
        kernelWorkload({.kind = KernelKind::Ilp, .chains = 4});
    core.reset();
    TraceGenerator g1(w);
    core.run(g1, 30000);
    const uint64_t first = core.currentCycle();
    core.reset();
    EXPECT_EQ(core.currentCycle(), 0u);
    EXPECT_EQ(core.counters().value(Ctr::InstRetired), 0u);
    TraceGenerator g2(w);
    core.run(g2, 30000);
    EXPECT_EQ(core.currentCycle(), first);
}

TEST(CoreSim, BranchCountersTrackTrace)
{
    ClusteredCore core;
    core.reset();
    const Workload w = kernelWorkload(
        {.kind = KernelKind::Branchy, .workingSetBytes = 256 << 10,
         .predictability = 0.7});
    TraceGenerator gen(w);
    core.run(gen, 50000);
    const uint64_t branches =
        core.counters().value(Ctr::BranchesRetired);
    const uint64_t misp = core.counters().value(Ctr::BranchMispred);
    EXPECT_GT(branches, 5000u);
    EXPECT_GT(misp, 0u);
    EXPECT_LT(misp, branches);
}

TEST(CoreSim, LoadStoreCountersConsistent)
{
    ClusteredCore core;
    core.reset();
    const Workload w = kernelWorkload(
        {.kind = KernelKind::Stream, .workingSetBytes = 1 << 20,
         .computePerElem = 2});
    TraceGenerator gen(w);
    core.run(gen, 40000);
    const auto &c = core.counters();
    EXPECT_GT(c.value(Ctr::LoadsRetired), 0u);
    EXPECT_GT(c.value(Ctr::StoresRetired), 0u);
    EXPECT_EQ(c.value(Ctr::L1dRead) + 0,
              c.value(Ctr::L1dHit) + c.value(Ctr::L1dMiss) -
                  c.value(Ctr::L1dWrite));
    EXPECT_GE(c.value(Ctr::LoadsRetired) + c.value(Ctr::StoresRetired),
              c.value(Ctr::L1dHit) + c.value(Ctr::L1dMiss) -
                  c.value(Ctr::StoreForwards));
}

TEST(CoreSim, IpcNeverExceedsWidth)
{
    for (CoreMode mode : {CoreMode::HighPerf, CoreMode::LowPower}) {
        const Workload w =
            kernelWorkload({.kind = KernelKind::Ilp, .chains = 16});
        const double ipc = ipcOf(w, mode);
        const double width = mode == CoreMode::HighPerf ? 8.0 : 4.0;
        EXPECT_LE(ipc, width + 0.01);
        EXPECT_GT(ipc, 0.0);
    }
}

TEST(CoreSim, IntervalStatsSumToTotals)
{
    ClusteredCore core;
    core.reset();
    const Workload w =
        kernelWorkload({.kind = KernelKind::Ilp, .chains = 5});
    TraceGenerator gen(w);
    uint64_t cycles = 0;
    for (int i = 0; i < 10; ++i) {
        const IntervalStats s = core.run(gen, 10000);
        EXPECT_EQ(s.instructions, 10000u);
        cycles += s.cycles;
    }
    EXPECT_EQ(cycles, core.currentCycle());
}
