/**
 * @file
 * Crash/kill/resume integration tests for the journaled runner: a
 * forked child executes a small record-corpus + forest-fit pipeline;
 * the parent SIGKILLs it at seeded progress points (observed through
 * Journal::countEntries), re-runs it to completion, and asserts the
 * published artifacts are byte-identical to an uninterrupted run —
 * at one worker thread and at four. Also covers the resumable exit
 * code contract (SIGTERM and the deadline watchdog both exit 75).
 *
 * The parent process must NEVER touch the ThreadPool, SimMemo, or
 * Journal singletons: children inherit them across fork(), and a
 * pool whose worker threads died in the fork would hang the child.
 * All pipeline work happens in forked children that _exit().
 */

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/journal.hh"
#include "core/pipeline.hh"
#include "core/runner.hh"
#include "obs/report.hh"
#include "telemetry/counters.hh"
#include "trace/genome.hh"

using namespace psca;
namespace fs = std::filesystem;

namespace {

constexpr size_t kCorpusSize = 8;

std::string
scratchDir(const std::string &name)
{
    const std::string dir = "/tmp/psca_runner_test/" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::vector<char>
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

/** The child's pipeline: corpus record -> dataset -> forest fit. */
int
childPipeline()
{
    obs::RunReportGuard report("runner_test_report");

    BuildConfig build;
    build.intervalInstr = 5000;
    build.warmupInstr = 10000;
    build.counterIds = {
        CounterRegistry::index(Ctr::InstRetired),
        CounterRegistry::index(Ctr::StallCount),
        CounterRegistry::index(Ctr::L1dMiss),
        CounterRegistry::index(Ctr::UopsStalledOnDep),
    };

    std::vector<Workload> fleet;
    std::vector<uint32_t> ids;
    for (uint64_t i = 0; i < kCorpusSize; ++i) {
        Workload w;
        w.genome = sampleGenome(
            static_cast<AppCategory>(i % 6), 900 + i);
        w.inputSeed = 1;
        w.lengthInstr = 300000;
        w.name = w.genome.name;
        fleet.push_back(std::move(w));
        ids.push_back(static_cast<uint32_t>(i));
    }
    const std::vector<TraceRecord> records =
        recordCorpus(fleet, ids, build, "rtest");

    AssemblyOptions ao;
    ao.granularityInstr = 5000;
    ao.pSla = 0.90;
    const Dataset ds =
        assembleDataset(records, ao, build.intervalInstr);

    ForestConfig fc;
    fc.numTrees = 8;
    fc.maxDepth = 6;
    fc.seed = 5;
    const RandomForest rf(ds, fc);

    // Result artifact: dataset content plus every forest score, so
    // any divergence between a resumed and a straight-through run —
    // in the records, the assembly, or any tree — changes the bytes.
    uint64_t h = ds.contentHash();
    std::vector<double> scores(ds.numSamples());
    for (size_t i = 0; i < ds.numSamples(); ++i)
        scores[i] = rf.score(ds.row(i));
    h = fnv1aUpdate(h, scores.data(),
                    scores.size() * sizeof(double));
    const bool ok = writeArtifactFile(
        cacheDirectory() + "/result.bin", [&](BinaryWriter &out) {
            out.put(h);
            out.put<uint64_t>(ds.numSamples());
        });
    return ok ? 0 : 1;
}

/** Fork the pipeline child; returns its pid. */
pid_t
forkPipeline()
{
    std::fflush(nullptr);
    const pid_t pid = fork();
    if (pid == 0)
        _exit(childPipeline());
    return pid;
}

/**
 * Wait until the journal holds at least @p target entries, then
 * SIGKILL the child. Returns false if the child exited first.
 */
bool
killAtEntryCount(pid_t pid, const std::string &journal_path,
                 size_t target)
{
    for (int spins = 0; spins < 120000; ++spins) {
        int status = 0;
        if (waitpid(pid, &status, WNOHANG) == pid)
            return false; // finished before the kill point
        if (Journal::countEntries(journal_path) >= target) {
            kill(pid, SIGKILL);
            waitpid(pid, &status, 0);
            return true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
    ADD_FAILURE() << "child never reached " << target
                  << " journal entries";
    return true;
}

/** Run the pipeline child to completion; returns its exit status. */
int
runToCompletion()
{
    const pid_t pid = forkPipeline();
    int status = 0;
    waitpid(pid, &status, 0);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/** Pull one "name": value number out of a run-report JSON file. */
double
reportValue(const std::string &path, const std::string &name)
{
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const std::string key = "\"" + name + "\":";
    const size_t at = text.find(key);
    if (at == std::string::npos)
        return -1.0;
    return std::strtod(text.c_str() + at + key.size(), nullptr);
}

/** All files in @p dir whose names contain @p needle, sorted. */
std::vector<std::string>
filesContaining(const std::string &dir, const std::string &needle)
{
    std::vector<std::string> names;
    for (const auto &e : fs::directory_iterator(dir))
        if (e.path().filename().string().find(needle) !=
            std::string::npos)
            names.push_back(e.path().filename().string());
    std::sort(names.begin(), names.end());
    return names;
}

/**
 * The headline contract: SIGKILL the pipeline at three seeded
 * progress points, resume each time, and the final artifacts are
 * byte-identical to a never-interrupted run.
 */
void
killResumeByteIdentity(const std::string &tag, const char *threads)
{
    setenv("PSCA_THREADS", threads, 1);

    // Reference: one uninterrupted run.
    const std::string ref_dir = scratchDir(tag + "_ref");
    setenv("PSCA_CACHE_DIR", ref_dir.c_str(), 1);
    setenv("PSCA_REPORT_DIR", ref_dir.c_str(), 1);
    ASSERT_EQ(runToCompletion(), 0);

    // Interrupted: SIGKILL at three seeded journal-progress points.
    const std::string dir = scratchDir(tag + "_killed");
    setenv("PSCA_CACHE_DIR", dir.c_str(), 1);
    setenv("PSCA_REPORT_DIR", dir.c_str(), 1);
    const std::string journal_path = dir + "/journal.psj";
    size_t entries = 0;
    for (size_t target : {size_t{1}, entries + 2, entries + 4}) {
        const pid_t pid = forkPipeline();
        if (!killAtEntryCount(pid, journal_path,
                              std::max(target, entries + 1)))
            break; // finished early; resume coverage shrinks, OK
        entries = Journal::countEntries(journal_path);
    }

    // How many live completed units should the final run skip? All
    // journal frames are corpus UnitDone entries until the corpus
    // completes (writes its whole-corpus cache and retires, adding
    // one ScopeRetired frame); after that, journaled units belong to
    // the forest fit.
    const size_t pre = Journal::countEntries(journal_path);
    const bool corpus_cached =
        !filesContaining(dir, "rtest_").empty();
    const size_t live = !corpus_cached
        ? pre
        : (pre > kCorpusSize ? pre - kCorpusSize - 1 : 0);

    ASSERT_EQ(runToCompletion(), 0);

    // Resume must skip (not recompute) >= 90% of completed units.
    const std::string report = dir + "/runner_test_report.json";
    const double skipped =
        reportValue(report, "runner.units_skipped");
    const double executed =
        reportValue(report, "runner.units_executed");
    EXPECT_GE(skipped, 0.9 * static_cast<double>(live))
        << "skipped " << skipped << " executed " << executed
        << " of " << live << " live completed units";
    EXPECT_GT(executed, 0.0);

    // Artifact byte-identity: the result file and every published
    // cache file must match the uninterrupted run bit for bit.
    EXPECT_EQ(slurp(dir + "/result.bin"),
              slurp(ref_dir + "/result.bin"));
    const std::vector<std::string> caches =
        filesContaining(ref_dir, "rtest_");
    ASSERT_FALSE(caches.empty());
    EXPECT_EQ(filesContaining(dir, "rtest_"), caches);
    for (const std::string &name : caches)
        EXPECT_EQ(slurp(dir + "/" + name),
                  slurp(ref_dir + "/" + name))
            << name;
}

TEST(KillResume, ByteIdenticalSingleThread)
{
    killResumeByteIdentity("t1", "1");
}

TEST(KillResume, ByteIdenticalFourThreads)
{
    killResumeByteIdentity("t4", "4");
}

TEST(Runner, SigtermExitsWithResumableStatus)
{
    const std::string dir = scratchDir("sigterm");
    const std::string ready = dir + "/ready";
    std::fflush(nullptr);
    const pid_t pid = fork();
    if (pid == 0) {
        const int rc = runner::guardedMain([&ready] {
            std::ofstream(ready) << "up";
            while (!stopRequested())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            return 0;
        });
        _exit(rc);
    }
    for (int spins = 0; spins < 20000 && !fs::exists(ready); ++spins)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_TRUE(fs::exists(ready));
    kill(pid, SIGTERM);
    int status = 0;
    waitpid(pid, &status, 0);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), runner::kResumableExit);
}

TEST(Runner, DeadlineWatchdogRequestsStopAndExitsResumable)
{
    setenv("PSCA_DEADLINE_S", "0.2", 1);
    setenv("PSCA_DEADLINE_GRACE_S", "60", 1);
    std::fflush(nullptr);
    const pid_t pid = fork();
    if (pid == 0) {
        const int rc = runner::guardedMain([] {
            while (!stopRequested())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            return 0;
        });
        _exit(rc);
    }
    unsetenv("PSCA_DEADLINE_S");
    unsetenv("PSCA_DEADLINE_GRACE_S");
    int status = 0;
    waitpid(pid, &status, 0);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), runner::kResumableExit);
}

} // namespace
