/**
 * @file
 * Tests for the SRCH baseline: quantile histogram encoding and the
 * windowed dataset transformation.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ml/srch.hh"

using namespace psca;

namespace {

Dataset
streamyData(size_t traces, size_t per_trace, uint64_t seed)
{
    Rng rng(seed);
    Dataset d;
    d.numFeatures = 3;
    for (size_t t = 0; t < traces; ++t) {
        // Each trace has a regime: high-mean or low-mean counters.
        const bool high = rng.bernoulli(0.5);
        for (size_t i = 0; i < per_trace; ++i) {
            float row[3];
            for (auto &v : row)
                v = static_cast<float>(
                    rng.gaussian(high ? 4.0 : 1.0, 0.5));
            d.addSample(row, high ? 1 : 0, static_cast<uint32_t>(t),
                        static_cast<uint32_t>(t));
        }
    }
    return d;
}

} // namespace

TEST(HistogramEncoder, BucketsCoverRange)
{
    const Dataset d = streamyData(10, 50, 1);
    const HistogramEncoder enc = HistogramEncoder::fit(d);
    EXPECT_EQ(enc.numCounters(), 3u);
    EXPECT_EQ(enc.numFeatures(), 30u);
    EXPECT_EQ(enc.bucketOf(0, -100.0f), 0);
    EXPECT_EQ(enc.bucketOf(0, 100.0f), HistogramEncoder::kBuckets - 1);
}

TEST(HistogramEncoder, EncodeNormalizes)
{
    const Dataset d = streamyData(10, 50, 2);
    const HistogramEncoder enc = HistogramEncoder::fit(d);
    std::vector<const float *> rows{d.row(0), d.row(1), d.row(2)};
    std::vector<float> out(enc.numFeatures());
    enc.encode(rows, out.data());
    // Per counter, tallies sum to 1.
    for (size_t c = 0; c < 3; ++c) {
        float sum = 0.0f;
        for (int b = 0; b < HistogramEncoder::kBuckets; ++b)
            sum += out[c * HistogramEncoder::kBuckets +
                       static_cast<size_t>(b)];
        EXPECT_NEAR(sum, 1.0f, 1e-5);
    }
}

TEST(EncodeDataset, WindowingRespectsTraceBoundaries)
{
    const Dataset d = streamyData(4, 10, 3);
    const HistogramEncoder enc = HistogramEncoder::fit(d);
    const Dataset hist = encodeHistogramDataset(d, enc, 4);
    // Each 10-sample trace yields floor(10/4) = 2 windows.
    EXPECT_EQ(hist.numSamples(), 8u);
    EXPECT_EQ(hist.numFeatures, enc.numFeatures());
}

TEST(EncodeDataset, WindowOneIsPerSample)
{
    const Dataset d = streamyData(2, 6, 4);
    const HistogramEncoder enc = HistogramEncoder::fit(d);
    const Dataset hist = encodeHistogramDataset(d, enc, 1);
    EXPECT_EQ(hist.numSamples(), d.numSamples());
}

TEST(Srch, LearnsRegimes)
{
    const Dataset d = streamyData(60, 20, 5);
    SrchModel model(d, 4, LogRegConfig{});
    // Evaluate on fresh data from the same process.
    const Dataset test = streamyData(20, 20, 6);
    const Dataset hist =
        encodeHistogramDataset(test, model.encoder(), 4);
    size_t correct = 0;
    for (size_t i = 0; i < hist.numSamples(); ++i)
        correct += model.predict(hist.row(i)) == (hist.y[i] != 0);
    EXPECT_GT(static_cast<double>(correct) /
                  static_cast<double>(hist.numSamples()),
              0.9);
}

TEST(Srch, OpsMatchDubachScale)
{
    // 15 counters x 10 buckets -> logistic on 150 features: 572 ops.
    Rng rng(7);
    Dataset d;
    d.numFeatures = 15;
    for (int i = 0; i < 200; ++i) {
        float row[15];
        for (auto &v : row)
            v = static_cast<float>(rng.gaussian());
        d.addSample(row, i % 2, 0, static_cast<uint32_t>(i / 50));
    }
    SrchModel model(d, 4, LogRegConfig{});
    EXPECT_EQ(model.opsPerInference(), 572u);
}
