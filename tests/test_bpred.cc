/**
 * @file
 * Tests for the tournament branch predictor.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sim/bpred.hh"

using namespace psca;

TEST(Bpred, LearnsAlwaysTaken)
{
    TournamentBpred bp;
    int correct = 0;
    for (int i = 0; i < 100; ++i)
        correct += bp.predictAndUpdate(0x1000, true) ? 1 : 0;
    EXPECT_GE(correct, 97); // only warmup misses
}

TEST(Bpred, LearnsBiasPerPc)
{
    TournamentBpred bp;
    int correct = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        correct += bp.predictAndUpdate(0x1000, true) ? 1 : 0;
        correct += bp.predictAndUpdate(0x2000, false) ? 1 : 0;
    }
    EXPECT_GT(correct, 2 * n - 40);
}

TEST(Bpred, LearnsShortLoopPattern)
{
    // Period-4 loop: T T T N repeating; gshare should capture it.
    TournamentBpred bp;
    int correct = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i)
        correct += bp.predictAndUpdate(0x3000, i % 4 != 3) ? 1 : 0;
    EXPECT_GT(static_cast<double>(correct) / n, 0.95);
}

TEST(Bpred, RandomBranchesNearChance)
{
    TournamentBpred bp;
    Rng rng(1);
    int correct = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        correct += bp.predictAndUpdate(0x4000, rng.bernoulli(0.5)) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(correct) / n, 0.5, 0.05);
}

TEST(Bpred, BiasedRandomApproachesBias)
{
    TournamentBpred bp;
    Rng rng(2);
    int correct = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        correct += bp.predictAndUpdate(0x5000, rng.bernoulli(0.9)) ? 1 : 0;
    EXPECT_GT(static_cast<double>(correct) / n, 0.85);
}

TEST(Bpred, ResetForgets)
{
    TournamentBpred bp;
    for (int i = 0; i < 100; ++i)
        bp.predictAndUpdate(0x1000, false);
    bp.reset();
    // Post-reset counters are weakly-taken: the first "false"
    // outcome must once again mispredict.
    EXPECT_FALSE(bp.predictAndUpdate(0x1000, false));
}
