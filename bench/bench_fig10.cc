/**
 * @file
 * Figure 10: stepwise blindspot mitigation. Starting from the
 * baseline 1-layer expert-counter MLP trained on SPEC2017 only, each
 * technique is added in turn: HDTR training diversity (Sec. 6.1), PF
 * counter selection (Sec. 6.2), and hyperparameter screening +
 * sensitivity calibration (Sec. 6.3).
 *
 * Deviation from the paper: we measure RSV on held-out *HDTR*
 * applications (10k-instruction granularity, low-power telemetry)
 * rather than on the SPEC stand-ins, because our synthetic SPEC
 * profiles are individually too regular to expose blindspots offline
 * — the diverse HDTR population is where unseen-workload behaviour
 * lives in this reproduction (see EXPERIMENTS.md).
 */

#include "bench_common.hh"

#include "math/stats.hh"
#include "core/runner.hh"

using namespace psca;
using namespace psca::bench;

namespace {

struct Bar
{
    const char *label;
    double rsv;
};

/** Evaluate a model spec on held-out HDTR apps across folds. */
double
foldedRsv(const Dataset &train_source,
          const Dataset &eval_source, bool cross_corpus,
          const std::vector<int> &topology, bool calibrate,
          int folds, int epochs, size_t max_tune)
{
    std::vector<double> rsv;
    for (int fold = 0; fold < folds; ++fold) {
        const uint64_t seed = mixSeeds(1234, fold + 1);
        Dataset tune_raw;
        Dataset valid_raw;
        if (cross_corpus) {
            // Train on the whole training corpus; validate on a
            // random 20%-app slice of the evaluation corpus.
            tune_raw = train_source;
            const FoldSplit s = appLevelSplit(eval_source, 0.8, seed);
            valid_raw = eval_source.subset(s.validIdx);
        } else {
            const FoldSplit s = appLevelSplit(train_source, 0.8, seed);
            tune_raw = train_source.subset(s.tuneIdx);
            valid_raw = train_source.subset(s.validIdx);
        }
        if (max_tune && tune_raw.numSamples() > max_tune) {
            Rng rng(seed ^ 0x777);
            std::vector<size_t> keep(tune_raw.numSamples());
            for (size_t i = 0; i < keep.size(); ++i)
                keep[i] = i;
            rng.shuffle(keep);
            keep.resize(max_tune);
            tune_raw = tune_raw.subset(keep);
        }
        const FeatureScaler scaler = FeatureScaler::fit(tune_raw);
        const Dataset tune = scaler.apply(tune_raw);
        const Dataset valid = scaler.apply(valid_raw);
        MlpConfig cfg;
        cfg.hiddenLayers = topology;
        cfg.epochs = epochs;
        cfg.seed = seed;
        auto model = trainMlp(tune, cfg);
        if (calibrate)
            calibrateThreshold(*model, tune, 1600, 0.01);
        rsv.push_back(evaluateModel(*model, valid, 1600).rsv);
    }
    return mean(rsv);
}

} // namespace

static int
run()
{
    banner("Figure 10 -- stepwise blindspot mitigation");
    ReportGuard report("fig10");

    const ScaleConfig scale = ScaleConfig::fromEnv();
    ExperimentContext ctx = setupExperiment(scale, true);
    const int epochs = scale.mlpEpochs;
    const int folds = std::max(4, scale.folds / 2);

    auto dataset = [&](const std::vector<TraceRecord> &records,
                       const std::vector<size_t> &columns) {
        AssemblyOptions opts;
        opts.granularityInstr = 10000;
        opts.telemetryMode = CoreMode::LowPower;
        opts.columns = columns;
        return assembleDataset(records, opts, ctx.build.intervalInstr);
    };

    const auto expert = ctx.plan.charstarColumns();
    const auto pf12 = ctx.plan.pfColumns(12);
    const Dataset spec_expert = dataset(ctx.spec, expert);
    const Dataset hdtr_expert = dataset(ctx.hdtr, expert);
    const Dataset hdtr_pf = dataset(ctx.hdtr, pf12);

    const Bar bars[] = {
        {"baseline MLP, SPEC-only training",
         foldedRsv(spec_expert, hdtr_expert, true, {10}, false,
                   folds, epochs, scale.maxTuneSamples)},
        {"+ HDTR training diversity (6.1)",
         foldedRsv(hdtr_expert, hdtr_expert, false, {10}, false,
                   folds, epochs, scale.maxTuneSamples)},
        {"+ PF counter selection (6.2)",
         foldedRsv(hdtr_pf, hdtr_pf, false, {10}, false, folds,
                   epochs, scale.maxTuneSamples)},
        {"+ hyperparam screening + calib (6.3)",
         foldedRsv(hdtr_pf, hdtr_pf, false, {8, 8, 4}, true,
                   folds, epochs, scale.maxTuneSamples)},
    };
    const double paper[] = {16.5, 10.9, 4.3, 1.2};
    for (size_t i = 0; i < std::size(bars); ++i) {
        std::printf("%-40s RSV %6.2f%%   [paper: %4.1f%%]\n",
                    bars[i].label, bars[i].rsv * 100, paper[i]);
    }
    std::printf("\ntotal reduction: %.2f%% -> %.2f%%   [paper: "
                "16.5%% -> 1.2%%]\n",
                bars[0].rsv * 100, bars[3].rsv * 100);
    return 0;
}

int
main()
{
    return psca::runner::guardedMain(run);
}
