/**
 * @file
 * Figure 6: hyperparameter screening. Cross-validate MLPs with 1-3
 * layers and 4-32 filters per layer; report PGOS mean vs std and
 * whether the topology fits the 50k-instruction ops budget. The
 * "best" pick minimizes std at high mean (the paper chooses 8/8/4).
 */

#include "bench_common.hh"

#include "uc/budget.hh"
#include "core/runner.hh"

using namespace psca;
using namespace psca::bench;

static int
run()
{
    banner("Figure 6 -- MLP hyperparameter screening");
    ReportGuard report("fig6");

    const ScaleConfig scale = ScaleConfig::fromEnv();
    ExperimentContext ctx = setupExperiment(scale, false);

    AssemblyOptions opts;
    opts.granularityInstr = 10000;
    opts.telemetryMode = CoreMode::LowPower;
    opts.columns = ctx.plan.pfColumns(12);
    const Dataset full =
        assembleDataset(ctx.hdtr, opts, ctx.build.intervalInstr);

    const UcBudget budget;
    const uint64_t budget50k = budget.opsBudget(50000);

    const std::vector<std::vector<int>> topologies = {
        {4},        {8},        {16},        {32},
        {8, 4},     {16, 8},    {32, 16},
        {8, 8, 4},  {16, 8, 4}, {16, 16, 8}, {32, 32, 16},
    };

    std::printf("%-14s %8s %10s %-12s %-12s %-8s\n", "topology",
                "layers", "ops/pred", "PGOS mean", "PGOS std",
                "<=50k?");
    for (const auto &topo : topologies) {
        CrossValOptions cv;
        cv.folds = scale.folds;
        cv.maxTuneSamples = scale.maxTuneSamples;
        cv.rsvWindow = 1600;
        cv.seed = 6;
        const int epochs = scale.mlpEpochs;
        const CrossValSummary s = crossValidate(
            full,
            [&topo, epochs](const Dataset &tune, uint64_t seed) {
                MlpConfig cfg;
                cfg.hiddenLayers = topo;
                cfg.epochs = epochs;
                cfg.seed = seed;
                return std::unique_ptr<Model>(
                    trainMlp(tune, cfg).release());
            },
            cv);

        const MlpModel probe(12, topo, 1);
        std::string name;
        for (size_t i = 0; i < topo.size(); ++i)
            name += (i ? "/" : "") + std::to_string(topo[i]);
        std::printf("%-14s %8zu %10u %9.2f%%  %9.2f%%  %-8s\n",
                    name.c_str(), topo.size(),
                    probe.opsPerInference(), s.pgosMean * 100,
                    s.pgosStd * 100,
                    probe.opsPerInference() <= budget50k ? "yes"
                                                         : "no");
    }
    std::printf("\n(paper: 3-layer nets dominate the low-variance "
                "frontier; 8/8/4 picked at 678 ops <= 781 budget)\n");
    return 0;
}

int
main()
{
    return psca::runner::guardedMain(run);
}
