/**
 * @file
 * Figure 4: training-set diversity mitigates blindspots. A 3-layer
 * 32/32/16 MLP is cross-validated on low-power telemetry with the
 * tuning set capped at 1..N applications; PGOS stabilizes (std
 * shrinks) and RSV falls as diversity grows.
 */

#include "bench_common.hh"
#include "core/runner.hh"

using namespace psca;
using namespace psca::bench;

static int
run()
{
    banner("Figure 4 -- training-set diversity vs blindspots");
    ReportGuard report("fig4");

    const ScaleConfig scale = ScaleConfig::fromEnv();
    ExperimentContext ctx = setupExperiment(scale, false);

    AssemblyOptions opts;
    opts.granularityInstr = 10000;
    opts.telemetryMode = CoreMode::LowPower; // the harder problem
    opts.columns = ctx.plan.pfColumns(12);
    const Dataset full =
        assembleDataset(ctx.hdtr, opts, ctx.build.intervalInstr);

    std::printf("%-12s %-12s %-12s %-12s %-12s\n", "#tune apps",
                "PGOS mean", "PGOS std", "RSV mean", "RSV std");

    const size_t sweeps[] = {1, 5, 10, 20, 50, 100, 200,
                             static_cast<size_t>(
                                 scale.hdtrApps * 3 / 4)};
    for (size_t apps : sweeps) {
        CrossValOptions cv;
        cv.folds = scale.folds;
        cv.maxTuneApps = apps;
        cv.maxTuneSamples = scale.maxTuneSamples;
        cv.rsvWindow = 1600;
        cv.seed = 4;
        const int epochs = scale.mlpEpochs;
        const CrossValSummary s = crossValidate(
            full,
            [epochs](const Dataset &tune, uint64_t seed) {
                MlpConfig cfg;
                cfg.hiddenLayers = {32, 32, 16};
                cfg.epochs = epochs;
                cfg.seed = seed;
                return std::unique_ptr<Model>(
                    trainMlp(tune, cfg).release());
            },
            cv);
        std::printf("%-12zu %9.2f%%  %9.2f%%  %9.2f%%  %9.2f%%\n",
                    apps, s.pgosMean * 100, s.pgosStd * 100,
                    s.rsvMean * 100, s.rsvStd * 100);
    }
    std::printf("\n(paper shape: PGOS std halves from 20 to 200+ "
                "apps; RSV drops ~2.5x from 7.1%% to 2.8%%)\n");
    return 0;
}

int
main()
{
    return psca::runner::guardedMain(run);
}
