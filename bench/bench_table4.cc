/**
 * @file
 * Table 4: the counters chosen by PF Counter Selection (ours, next
 * to the paper's 12 for comparison), plus the screen populations
 * (936 -> post-activity -> post-stddev, paper: 936 -> 308).
 */

#include "bench_common.hh"
#include "core/runner.hh"

using namespace psca;
using namespace psca::bench;

static int
run()
{
    banner("Table 4 -- PF Counter Selection result");
    ReportGuard report("table4");

    const ScaleConfig scale = ScaleConfig::fromEnv();
    const auto apps = buildHdtrApps(scale.pfApps);
    std::vector<Workload> workloads;
    std::vector<uint32_t> ids;
    for (size_t a = 0; a < apps.size(); ++a) {
        Workload w;
        w.genome = apps[a];
        w.inputSeed = 1;
        w.lengthInstr = scale.pfTraceLen;
        w.name = apps[a].name + ".pf";
        workloads.push_back(std::move(w));
        ids.push_back(static_cast<uint32_t>(a));
    }
    BuildConfig cfg;
    cfg.counterIds.resize(kNumTelemetryCounters);
    for (size_t i = 0; i < kNumTelemetryCounters; ++i)
        cfg.counterIds[i] = static_cast<uint16_t>(i);
    const auto records = recordCorpus(workloads, ids, cfg, "pf936");

    const PfConfig pf_cfg;
    const PfResult res =
        pfCounterSelection(records, pf_cfg, CoreMode::LowPower);

    std::printf("screen populations: %zu -> %zu (low-activity) -> "
                "%zu (std-dev)   [paper: 936 -> 308]\n\n",
                kNumTelemetryCounters, res.afterActivityScreen,
                res.survivors.size());

    static const char *const paper12[] = {
        "Micro Op Cache Misses", "L2 Silent Evictions",
        "Wrong-Path uOps Flushed", "Store Queue Occupancy",
        "L1 Data Cache Reads", "Stall Count",
        "Physical Register Ref. Count", "Loads Retired",
        "L1 Data Cache Hits", "Micro Op Cache Hits",
        "Micro Ops Stalled on Dep.", "Micro Ops Ready",
    };
    const auto &reg = CounterRegistry::instance();
    std::printf("%-4s %-36s %-32s\n", "#", "ours (PF ranked)",
                "paper Table 4");
    for (size_t i = 0; i < 12; ++i) {
        const char *ours = i < res.selected.size()
            ? reg.name(res.selected[i]).c_str()
            : "-";
        std::printf("%-4zu %-36s %-32s\n", i + 1, ours, paper12[i]);
    }
    std::printf("\n(ranked %zu counters total)\n",
                res.selected.size());
    return 0;
}

int
main()
{
    return psca::runner::guardedMain(run);
}
