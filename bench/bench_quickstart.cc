/**
 * @file
 * Telemetry-plane overhead bench: the quickstart pipeline (record
 * dual-mode telemetry, train the dual model, run closed-loop gating)
 * wall-clocked with the telemetry plane off and then fully on (span
 * tracing to a file + live HTTP endpoint), recording both times and
 * the overhead percentage as gauges in BENCH_quickstart.json. The
 * acceptance bar (ISSUE 6, DESIGN.md §12) is <= 2% overhead.
 */

#include <cstdio>
#include <cstdlib>

#include <chrono>

#include "bench_common.hh"
#include "core/controller.hh"
#include "core/pipeline.hh"
#include "core/runner.hh"
#include "ml/tree.hh"
#include "obs/http.hh"
#include "obs/trace.hh"

using namespace psca;
using namespace psca::bench;

namespace {

/** One full quickstart pass; returns the closed-loop PPW gain. */
double
quickstartOnce()
{
    AppGenome app = sampleGenome(AppCategory::HpcPerf, 2025);
    Workload workload;
    workload.genome = app;
    workload.inputSeed = 1;
    workload.lengthInstr = 600000;
    workload.name = app.name;

    BuildConfig build;
    build.counterIds = {
        CounterRegistry::index(Ctr::InstRetired),
        CounterRegistry::index(Ctr::StallCount),
        CounterRegistry::index(Ctr::L1dMiss),
        CounterRegistry::index(Ctr::LoadLatSum),
        CounterRegistry::index(Ctr::MshrOccSum),
        CounterRegistry::index(Ctr::UopsStalledOnDep),
        CounterRegistry::index(Ctr::UopsReady),
        CounterRegistry::index(Ctr::SqOccSum),
    };
    const TraceRecord record = recordTrace(workload, build, 0, 0);

    DualTrainOptions opts;
    opts.granularityInstr = 40000;
    opts.columns = {0, 1, 2, 3, 4, 5, 6, 7};
    opts.rsvWindow = 400;
    TrainedDual dual = trainDual(
        {record}, build, opts,
        [](const Dataset &tune,
           uint64_t seed) -> std::unique_ptr<Model> {
            ForestConfig fc;
            fc.numTrees = 8;
            fc.maxDepth = 8;
            fc.seed = seed;
            return std::make_unique<RandomForest>(tune, fc);
        });

    DualModelPredictor predictor(dual.high, dual.low, opts.columns,
                                 opts.granularityInstr, "quickstart");
    const ClosedLoopResult result =
        runClosedLoop(workload, record, predictor, build, SlaSpec{});
    return result.ppwGainPct;
}

/** Best (minimum) wall time of @p reps passes, in milliseconds. */
double
bestOf(int reps)
{
    using clock = std::chrono::steady_clock;
    double best = 0.0;
    for (int i = 0; i < reps; ++i) {
        const auto start = clock::now();
        quickstartOnce();
        const double ms = std::chrono::duration<double, std::milli>(
                              clock::now() - start)
                              .count();
        if (i == 0 || ms < best)
            best = ms;
    }
    return best;
}

} // namespace

static int
run()
{
    banner("Telemetry-plane overhead -- quickstart on vs off");
    // Destructs last so the gauges below land in the report.
    ReportGuard report("quickstart");

    // Prime: warm the sim memo cache and page everything in, so both
    // timed configurations replay the identical cached work.
    quickstartOnce();

    constexpr int kReps = 3;
    const double baseline_ms = bestOf(kReps);

    // Full telemetry plane: span trace to a file + live endpoint on
    // an ephemeral port (live open-scope tracking included).
    const char *trace_path = "/tmp/psca_bench_quickstart_trace.json";
    obs::TraceLog::instance().enable(trace_path);
    obs::HttpServer::instance().start(0);
    const double telemetry_ms = bestOf(kReps);
    obs::HttpServer::instance().stop();
    obs::TraceLog::instance().finalize();
    std::remove(trace_path);

    const double overhead_pct = baseline_ms > 0.0
        ? (telemetry_ms - baseline_ms) / baseline_ms * 100.0
        : 0.0;

    auto &reg = obs::StatRegistry::instance();
    reg.gauge("trace.quickstart_baseline_ms").set(baseline_ms);
    reg.gauge("trace.quickstart_telemetry_ms").set(telemetry_ms);
    reg.gauge("trace.overhead_pct").set(overhead_pct);

    std::printf("quickstart: %.1f ms telemetry off, %.1f ms with "
                "tracing + endpoint (%+.2f%% overhead; bar: <= 2%%)\n",
                baseline_ms, telemetry_ms, overhead_pct);
    return 0;
}

int
main()
{
    return psca::runner::guardedMain(run);
}
