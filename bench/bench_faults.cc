/**
 * @file
 * Fault-injection sweep: the closed adaptation loop (guardrailed
 * random-forest dual model) driven under increasing telemetry +
 * firmware fault rates. For each intensity the bench reports mean
 * RSV, PPW gain, relative performance, and the degradation responses
 * the controller mounted (snapshot carry-forwards, deadline misses,
 * input-sanitation vetoes, guardrail trips), and exports the curves
 * as gauges into BENCH_faults.json.
 *
 * Not a paper experiment: the paper's robustness story (Sec. 7) is
 * qualitative. This bench quantifies the reproduction's degraded-mode
 * behaviour so regressions in fault handling show up as moved curves.
 */

#include "bench_common.hh"

#include "common/fault.hh"
#include "core/guardrail.hh"
#include "core/runner.hh"

using namespace psca;
using namespace psca::bench;

namespace {

BuildConfig
faultBenchConfig()
{
    BuildConfig cfg;
    cfg.intervalInstr = 10000;
    cfg.warmupInstr = 20000;
    cfg.counterIds = {
        CounterRegistry::index(Ctr::InstRetired),
        CounterRegistry::index(Ctr::StallCount),
        CounterRegistry::index(Ctr::L1dMiss),
        CounterRegistry::index(Ctr::LoadLatSum),
        CounterRegistry::index(Ctr::MshrOccSum),
        CounterRegistry::index(Ctr::UopsStalledOnDep),
    };
    return cfg;
}

Workload
mixedWorkload(uint64_t seed, uint64_t len)
{
    AppGenome g;
    g.name = "fault_bench";
    g.seed = seed;
    PhaseSpec gate, hungry;
    gate.kernel = {.kind = KernelKind::PointerChase,
                   .workingSetBytes = 16 << 20, .chains = 4};
    gate.weight = 0.5;
    gate.meanLenInstr = 150e3;
    hungry.kernel = {.kind = KernelKind::Ilp, .chains = 14};
    hungry.weight = 0.5;
    hungry.meanLenInstr = 150e3;
    g.phases = {gate, hungry};
    Workload w;
    w.genome = g;
    w.inputSeed = 1;
    w.lengthInstr = len;
    w.name = "fault_bench_" + std::to_string(seed);
    return w;
}

uint64_t
counterValue(const char *name)
{
    const auto *c = obs::StatRegistry::instance().findCounter(name);
    return c ? c->value() : 0;
}

/** Degradation counters the fault mix should be exercising. */
struct DegradationSnapshot
{
    uint64_t carried;
    uint64_t missed;
    uint64_t vetoed;
    uint64_t tripped;

    static DegradationSnapshot
    now()
    {
        return {counterValue("controller.snapshot_carryforwards"),
                counterValue("controller.deadline_misses"),
                counterValue("controller.sanitize_vetoes"),
                counterValue("controller.guardrail_trips")};
    }

    DegradationSnapshot
    since(const DegradationSnapshot &base) const
    {
        return {carried - base.carried, missed - base.missed,
                vetoed - base.vetoed, tripped - base.tripped};
    }
};

/** Reference mix scaled by one intensity knob (DESIGN.md Sec. 10). */
std::string
mixAtIntensity(double m)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "telemetry.dropped_snapshot:%.4f,"
                  "telemetry.noise:%.4f:0.05,"
                  "telemetry.stuck_counter:%.4f,"
                  "uc.deadline_miss:%.4f",
                  m, m, m / 2.0, m);
    return buf;
}

} // namespace

static int
run()
{
    banner("Fault sweep -- closed-loop degradation vs fault rate");
    ReportGuard report("faults");

    const BuildConfig cfg = faultBenchConfig();

    // Train a small forest on two traces; evaluate on four others.
    std::vector<TraceRecord> train;
    for (uint64_t seed : {3, 9})
        train.push_back(recordTrace(mixedWorkload(seed, 400000), cfg,
                                    static_cast<uint32_t>(seed), 0));
    DualTrainOptions opts;
    opts.granularityInstr = 20000;
    opts.columns = {0, 1, 2, 3, 4, 5};
    opts.rsvWindow = 64;
    TrainedDual dual = trainDual(
        train, cfg, opts,
        [](const Dataset &tune, uint64_t s) -> std::unique_ptr<Model> {
            ForestConfig fc;
            fc.numTrees = 4;
            fc.maxDepth = 6;
            fc.seed = s;
            return std::make_unique<RandomForest>(tune, fc);
        });

    const std::vector<uint64_t> eval_seeds{5, 7, 13, 23};
    std::vector<Workload> eval_w;
    std::vector<TraceRecord> eval_rec;
    for (uint64_t seed : eval_seeds) {
        eval_w.push_back(mixedWorkload(seed, 400000));
        eval_rec.push_back(recordTrace(
            eval_w.back(), cfg, static_cast<uint32_t>(seed), 1));
    }

    auto &faults = FaultRegistry::instance();
    auto &reg = obs::StatRegistry::instance();
    const double intensities[] = {0.0, 0.01, 0.05, 0.1, 0.2};

    std::printf("%-9s %8s %8s %8s %8s  %s\n", "rate", "RSV",
                "PPW%", "perf%", "lowres", "degradations "
                "(carry/miss/veto/trip)");
    double rsv_fault_free = 0.0;
    for (const double m : intensities) {
        faults.configure(m > 0.0 ? mixAtIntensity(m) : "");
        const DegradationSnapshot base = DegradationSnapshot::now();

        double rsv = 0.0, ppw = 0.0, perf = 0.0, lowres = 0.0;
        for (size_t i = 0; i < eval_w.size(); ++i) {
            DualModelPredictor inner(dual.high, dual.low,
                                     {0, 1, 2, 3, 4, 5}, 20000,
                                     "rf");
            GuardrailedPredictor guarded(inner);
            const ClosedLoopResult r = runClosedLoop(
                eval_w[i], eval_rec[i], guarded, cfg, SlaSpec{});
            rsv += r.rsv;
            ppw += r.ppwGainPct;
            perf += r.perfRelativePct;
            lowres += r.lowResidency;
        }
        const double n = static_cast<double>(eval_w.size());
        rsv /= n;
        ppw /= n;
        perf /= n;
        lowres /= n;
        if (m == 0.0)
            rsv_fault_free = rsv;

        const DegradationSnapshot d =
            DegradationSnapshot::now().since(base);
        std::printf("%-9.3f %8.4f %8.2f %8.2f %8.3f  "
                    "%llu/%llu/%llu/%llu\n",
                    m, rsv, ppw, perf, lowres,
                    static_cast<unsigned long long>(d.carried),
                    static_cast<unsigned long long>(d.missed),
                    static_cast<unsigned long long>(d.vetoed),
                    static_cast<unsigned long long>(d.tripped));

        char key[64];
        std::snprintf(key, sizeof(key), "faults.sweep.%g", m);
        reg.gauge(std::string(key) + ".rsv").set(rsv);
        reg.gauge(std::string(key) + ".ppw_gain_pct").set(ppw);
        reg.gauge(std::string(key) + ".perf_rel_pct").set(perf);
        reg.gauge(std::string(key) + ".degradations")
            .set(static_cast<double>(d.carried + d.missed +
                                     d.vetoed + d.tripped));
    }
    faults.configure("");

    std::printf("\nfault-free RSV %.4f; the guardrailed loop should "
                "stay within 2x of it\nat every swept rate (the "
                "acceptance bound the fault tests enforce).\n",
                rsv_fault_free);
    return 0;
}

int
main()
{
    return psca::runner::guardedMain(run);
}
