/**
 * @file
 * Figure 8: the evaluation headline. SRCH at coarse and 40k
 * granularity, the CHARSTAR-equivalent MLP at 20k, Best MLP at 50k,
 * and Best RF at 40k, all trained on HDTR and run closed-loop on the
 * SPEC2017 stand-in suite: PPW gain and RSV, with int/fp splits.
 */

#include "bench_common.hh"
#include "core/runner.hh"

using namespace psca;
using namespace psca::bench;

namespace {

void
report(const char *name, const ExperimentContext &ctx,
       GatePredictor &p)
{
    const SuiteResult all =
        evaluateSuite(ctx, p, allTraceIndices(ctx), 0.90);
    const SuiteResult ints =
        evaluateSuite(ctx, p, suiteTraceIndices(ctx, false), 0.90);
    const SuiteResult fps =
        evaluateSuite(ctx, p, suiteTraceIndices(ctx, true), 0.90);
    std::printf("%-14s %+8.1f%% %7.2f%% | int %+7.1f%% %6.2f%% | fp "
                "%+7.1f%% %6.2f%% | PGOS %5.1f%% res %5.1f%%\n",
                name, all.ppwGainPct, all.rsvPct, ints.ppwGainPct,
                ints.rsvPct, fps.ppwGainPct, fps.rsvPct, all.pgosPct,
                all.lowResidencyPct);
}

} // namespace

static int
run()
{
    banner("Figure 8 -- PPW and RSV across adaptation models");
    ReportGuard run_report("fig8");

    const ScaleConfig scale = ScaleConfig::fromEnv();
    ExperimentContext ctx = setupExperiment(scale, true);

    std::printf("%-14s %9s %8s\n", "model", "PPW", "RSV");

    // SRCH at its original coarse granularity: scaled to our trace
    // lengths (the paper's 10M instructions exceeds our SimPoints;
    // we use 1/4 of the trace so predictions stay sparse).
    const uint64_t intervals = ctx.spec.front().numIntervals();
    const uint64_t coarse =
        std::max<uint64_t>(80000, intervals / 4 * 10000);
    {
        NamedPredictor srch = makeSrch(ctx, 0.90, coarse);
        report("SRCH coarse", ctx, *srch.predictor);
    }
    {
        NamedPredictor srch = makeSrch(ctx, 0.90, 40000);
        report("SRCH@40k", ctx, *srch.predictor);
    }
    {
        NamedPredictor ch = makeCharstar(ctx, 0.90);
        report("CHARSTAR@20k", ctx, *ch.predictor);
    }
    {
        NamedPredictor mlp = makeBestMlp(ctx, 0.90);
        report("Best MLP@50k", ctx, *mlp.predictor);
    }
    {
        NamedPredictor rf = makeBestRf(ctx, 0.90);
        report("Best RF@40k", ctx, *rf.predictor);
    }

    std::printf("\n(paper: SRCH@10M +5.8%%/3.8%% | SRCH@40k "
                "+11.8%%/0.3%% | CHARSTAR +18.4%%/10.9%% | Best MLP "
                "+20.6%%/1.5%% | Best RF +21.9%%/0.3%%)\n");
    return 0;
}

int
main()
{
    return psca::runner::guardedMain(run);
}
