/**
 * @file
 * Figure 7: ideal low-power residency per SPEC2017 stand-in (the
 * fraction of intervals where the gated configuration meets the 90%
 * SLA; paper average 45.7%). Also prints the dataset inventories of
 * Tables 1 and 2 when run with --datasets.
 */

#include <cstring>

#include "bench_common.hh"
#include "core/runner.hh"

using namespace psca;
using namespace psca::bench;

static int
run(int argc, char **argv)
{
    banner("Figure 7 -- ideal low-power residency per benchmark");
    ReportGuard report("fig7");

    const ScaleConfig scale = ScaleConfig::fromEnv();
    ExperimentContext ctx = setupExperiment(scale, true);

    std::printf("%-20s %-10s %-12s\n", "benchmark", "suite",
                "residency");
    double sum = 0.0;
    for (size_t a = 0; a < ctx.specApps.size(); ++a) {
        std::vector<TraceRecord> sub;
        for (size_t i = 0; i < ctx.spec.size(); ++i)
            if (ctx.spec[i].appId == a)
                sub.push_back(ctx.spec[i]);
        const double res = idealLowPowerResidency(sub, 0.90);
        sum += res;
        std::printf("%-20s %-10s %9.1f%%\n",
                    ctx.specApps[a].genome.name.c_str(),
                    ctx.specApps[a].isFp ? "SPECfp" : "SPECint",
                    res * 100.0);
    }
    std::printf("%-20s %-10s %9.1f%%   [paper: 45.7%%]\n", "AVERAGE",
                "", sum / static_cast<double>(ctx.specApps.size()) *
                    100.0);

    if (argc > 1 && std::strcmp(argv[1], "--datasets") == 0) {
        banner("Tables 1 & 2 -- dataset inventories");
        HdtrCategorySizes sizes;
        std::printf("HDTR (Table 1): hpc/perf %d, cloud/sec %d, "
                    "ai/analytics %d, web/prod %d, multimedia %d, "
                    "games/render %d  (= %d apps)\n",
                    sizes.hpcPerf, sizes.cloudSecurity,
                    sizes.aiAnalytics, sizes.webProductivity,
                    sizes.multimedia, sizes.gamesRendering,
                    sizes.total());
        std::printf("\nSPEC2017 stand-ins (Table 2):\n");
        for (const auto &app : ctx.specApps) {
            std::printf("  %-20s %-8s %d inputs\n",
                        app.genome.name.c_str(),
                        app.isFp ? "fp" : "int", app.numInputs);
        }
    }
    return 0;
}

int
main(int argc, char **argv)
{
    return psca::runner::guardedMain(
        [argc, argv] { return run(argc, argv); });
}
