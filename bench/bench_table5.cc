/**
 * @file
 * Table 5: post-silicon SLA differentiation. The same CPU runs Best
 * RF models retrained (relabel + retrain, pure firmware change) to
 * P_SLA in {0.90, 0.80, 0.70}; we report SLA violation rate, PPW
 * gain, and average performance relative to high-performance mode on
 * the SPEC2017 stand-in suite.
 */

#include "bench_common.hh"
#include "core/runner.hh"

using namespace psca;
using namespace psca::bench;

static int
run()
{
    banner("Table 5 -- per-SLA retraining (Sec. 7.3)");
    ReportGuard report("table5");

    const ScaleConfig scale = ScaleConfig::fromEnv();
    ExperimentContext ctx = setupExperiment(scale, true);
    const auto traces = allTraceIndices(ctx);

    std::printf("%-12s %-12s %-16s %-22s\n", "P_SLA", "RSV",
                "PPW gain", "avg perf vs high");
    struct PaperRow { double p, rsv, ppw, perf; };
    const PaperRow paper[] = {{0.90, 0.3, 21.9, 98.2},
                              {0.80, 0.2, 28.2, 95.8},
                              {0.70, 0.1, 31.4, 93.4}};
    for (const auto &row : paper) {
        NamedPredictor rf = makeBestRf(ctx, row.p);
        const SuiteResult r =
            evaluateSuite(ctx, *rf.predictor, traces, row.p);
        std::printf("%-12.2f %5.2f%%      %+7.1f%%        %7.1f%%"
                    "     [paper: %.1f%% / +%.1f%% / %.1f%%]\n",
                    row.p, r.rsvPct, r.ppwGainPct, r.perfRelativePct,
                    row.rsv, row.ppw, row.perf);
    }
    return 0;
}

int
main()
{
    return psca::runner::guardedMain(run);
}
