/**
 * @file
 * Figure 5: telemetry information content. Sweep the number of
 * PF-ranked counters fed to the reference MLP and compare the
 * PF-selected set against the expert (CHARSTAR-style) counters.
 */

#include "bench_common.hh"
#include "core/runner.hh"

using namespace psca;
using namespace psca::bench;

namespace {

CrossValSummary
runCv(const Dataset &full, const ScaleConfig &scale)
{
    CrossValOptions cv;
    cv.folds = scale.folds;
    cv.maxTuneSamples = scale.maxTuneSamples;
    cv.rsvWindow = 1600;
    cv.seed = 5;
    const int epochs = scale.mlpEpochs;
    return crossValidate(
        full,
        [epochs](const Dataset &tune, uint64_t seed) {
            MlpConfig cfg;
            cfg.hiddenLayers = {32, 32, 16};
            cfg.epochs = epochs;
            cfg.seed = seed;
            return std::unique_ptr<Model>(
                trainMlp(tune, cfg).release());
        },
        cv);
}

} // namespace

static int
run()
{
    banner("Figure 5 -- counter count & selection method");
    ReportGuard report("fig5");

    const ScaleConfig scale = ScaleConfig::fromEnv();
    ExperimentContext ctx = setupExperiment(scale, false);

    AssemblyOptions opts;
    opts.granularityInstr = 10000;
    opts.telemetryMode = CoreMode::LowPower;

    std::printf("%-16s %-12s %-12s %-12s %-12s\n", "counters",
                "PGOS mean", "PGOS std", "RSV mean", "RSV std");
    const size_t max_r = ctx.plan.pfRanked.size();
    for (size_t r : {size_t(2), size_t(4), size_t(8), size_t(12),
                     size_t(16), max_r}) {
        if (r > max_r)
            continue;
        opts.columns = ctx.plan.pfColumns(r);
        const Dataset full =
            assembleDataset(ctx.hdtr, opts, ctx.build.intervalInstr);
        const CrossValSummary s = runCv(full, scale);
        char label[32];
        std::snprintf(label, sizeof(label), "PF top-%zu", r);
        std::printf("%-16s %9.2f%%  %9.2f%%  %9.2f%%  %9.2f%%\n",
                    label, s.pgosMean * 100, s.pgosStd * 100,
                    s.rsvMean * 100, s.rsvStd * 100);
    }

    // Expert counters for comparison (Sec. 6.2's model-specific set).
    opts.columns = ctx.plan.charstarColumns();
    const Dataset expert =
        assembleDataset(ctx.hdtr, opts, ctx.build.intervalInstr);
    const CrossValSummary s = runCv(expert, scale);
    std::printf("%-16s %9.2f%%  %9.2f%%  %9.2f%%  %9.2f%%\n",
                "expert-8", s.pgosMean * 100, s.pgosStd * 100,
                s.rsvMean * 100, s.rsvStd * 100);

    std::printf("\n(paper shape: ~8+ counters suffice for high PGOS; "
                "PF-12 cuts RSV to 2.4%% vs 3.6%% for the expert "
                "set)\n");
    return 0;
}

int
main()
{
    return psca::runner::guardedMain(run);
}
