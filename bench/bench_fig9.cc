/**
 * @file
 * Figure 9: per-benchmark breakdown of the CHARSTAR-equivalent MLP
 * vs our Best RF (PPW gain and RSV for each SPEC2017 stand-in).
 */

#include "bench_common.hh"
#include "core/runner.hh"

using namespace psca;
using namespace psca::bench;

static int
run()
{
    banner("Figure 9 -- per-benchmark CHARSTAR vs Best RF");
    ReportGuard report("fig9");

    const ScaleConfig scale = ScaleConfig::fromEnv();
    ExperimentContext ctx = setupExperiment(scale, true);

    NamedPredictor ch = makeCharstar(ctx, 0.90);
    NamedPredictor rf = makeBestRf(ctx, 0.90);

    std::printf("%-20s | %12s %9s | %12s %9s\n", "benchmark",
                "CHARSTAR PPW", "RSV", "Best RF PPW", "RSV");
    double ch_ppw = 0, ch_rsv = 0, rf_ppw = 0, rf_rsv = 0;
    for (size_t a = 0; a < ctx.specApps.size(); ++a) {
        const auto idx = appTraceIndices(ctx, a);
        const SuiteResult rc =
            evaluateSuite(ctx, *ch.predictor, idx, 0.90);
        const SuiteResult rr =
            evaluateSuite(ctx, *rf.predictor, idx, 0.90);
        std::printf("%-20s | %+11.1f%% %8.2f%% | %+11.1f%% %8.2f%%\n",
                    ctx.specApps[a].genome.name.c_str(),
                    rc.ppwGainPct, rc.rsvPct, rr.ppwGainPct,
                    rr.rsvPct);
        ch_ppw += rc.ppwGainPct;
        ch_rsv += rc.rsvPct;
        rf_ppw += rr.ppwGainPct;
        rf_rsv += rr.rsvPct;
    }
    const double n = static_cast<double>(ctx.specApps.size());
    std::printf("%-20s | %+11.1f%% %8.2f%% | %+11.1f%% %8.2f%%\n",
                "AVERAGE", ch_ppw / n, ch_rsv / n, rf_ppw / n,
                rf_rsv / n);
    std::printf("\n(paper: CHARSTAR +18.4%% with roms_s at 77.8%% "
                "RSV; Best RF +21.9%% with RSV < 1%% everywhere)\n");
    return 0;
}

int
main()
{
    return psca::runner::guardedMain(run);
}
