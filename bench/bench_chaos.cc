/**
 * @file
 * Chaos soak for the distributed fleet (DESIGN.md §13): run a small
 * deterministic campaign once clean and single-process, then again
 * as a coordinator + N-worker fleet under a seeded network fault
 * schedule (frame corruption, torn sends, connection resets, recv
 * stalls, dropped heartbeats, duplicated Results) with one
 * coordinator SIGKILL-and-restart mid-scope, and assert every
 * artifact is byte-identical between the two runs.
 *
 * The schedule is a pure function of PSCA_CHAOS_SEED, so a failing
 * soak replays exactly. The chaos event timeline (kill, restart,
 * rejoin tallies) and the recovery accounting land as chaos.* gauges
 * and structured events in BENCH_chaos.json.
 *
 * Same fork discipline as tests/test_dist.cc: the bench parent never
 * touches the ThreadPool, SimMemo, Journal, or FaultRegistry
 * singletons — every pipeline runs in a forked child that sets its
 * role/fault env after the fork and _exit()s.
 */

#include "bench_common.hh"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/env.hh"
#include "common/journal.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "core/runner.hh"
#include "dist/dist.hh"
#include "telemetry/counters.hh"
#include "trace/genome.hh"

using namespace psca;
using namespace psca::bench;
namespace fs = std::filesystem;

namespace {

constexpr size_t kCorpusSize = 12;

/**
 * The campaign every fleet process runs (lockstep-redundant): corpus
 * record -> dataset -> forest fit -> scored result artifact. The
 * corpus and forest scopes are the Distributed ones.
 */
int
childPipeline()
{
    obs::RunReportGuard report("chaos_fleet");

    BuildConfig build;
    build.intervalInstr = 5000;
    build.warmupInstr = 10000;
    build.counterIds = {
        CounterRegistry::index(Ctr::InstRetired),
        CounterRegistry::index(Ctr::StallCount),
        CounterRegistry::index(Ctr::L1dMiss),
        CounterRegistry::index(Ctr::UopsStalledOnDep),
    };

    std::vector<Workload> fleet;
    std::vector<uint32_t> ids;
    for (uint64_t i = 0; i < kCorpusSize; ++i) {
        Workload w;
        w.genome =
            sampleGenome(static_cast<AppCategory>(i % 6), 900 + i);
        w.inputSeed = 1;
        w.lengthInstr = 300000;
        w.name = w.genome.name;
        fleet.push_back(std::move(w));
        ids.push_back(static_cast<uint32_t>(i));
    }
    const std::vector<TraceRecord> records =
        recordCorpus(fleet, ids, build, "chaosb");

    AssemblyOptions ao;
    ao.granularityInstr = 5000;
    ao.pSla = 0.90;
    const Dataset ds =
        assembleDataset(records, ao, build.intervalInstr);

    ForestConfig fc;
    fc.numTrees = 8;
    fc.maxDepth = 6;
    fc.seed = 5;
    const RandomForest rf(ds, fc);

    uint64_t h = ds.contentHash();
    std::vector<double> scores(ds.numSamples());
    for (size_t i = 0; i < ds.numSamples(); ++i)
        scores[i] = rf.score(ds.row(i));
    h = fnv1aUpdate(h, scores.data(), scores.size() * sizeof(double));
    const bool ok = writeArtifactFile(
        cacheDirectory() + "/result.bin", [&](BinaryWriter &out) {
            out.put(h);
            out.put<uint64_t>(ds.numSamples());
        });
    return ok ? 0 : 1;
}

std::string
scratchDir(const std::string &name)
{
    const std::string dir = "/tmp/psca_chaos_bench/" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::vector<char>
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

/** Pull one "name": value number out of a run-report JSON file. */
double
reportValue(const std::string &path, const std::string &name)
{
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const std::string key = "\"" + name + "\":";
    const size_t at = text.find(key);
    if (at == std::string::npos)
        return 0.0;
    return std::strtod(text.c_str() + at + key.size(), nullptr);
}

/**
 * Fork one fleet process with role + fault env set after the fork.
 * Workers journal nothing (the coordinator owns the journal) and
 * report into their own subdirectory.
 */
pid_t
forkFleetChild(const char *role, const std::string &dir, int workers,
               int worker_index, const std::string &fault_spec,
               uint64_t fault_seed)
{
    std::fflush(nullptr);
    const pid_t pid = fork();
    if (pid != 0)
        return pid;
    setenv("PSCA_CACHE_DIR", dir.c_str(), 1);
    setenv("PSCA_REPORT_DIR", dir.c_str(), 1);
    setenv("PSCA_DIST_ROLE", role, 1);
    setenv("PSCA_FAULTS", fault_spec.c_str(), 1);
    setenv("PSCA_FAULT_SEED",
           std::to_string(fault_seed).c_str(), 1);
    if (std::strcmp(role, "coordinator") == 0) {
        setenv("PSCA_DIST_WORKERS",
               std::to_string(workers).c_str(), 1);
    } else {
        setenv("PSCA_JOURNAL", "0", 1);
        setenv("PSCA_DIST_RETRIES", "10", 1);
        setenv("PSCA_DIST_HEARTBEAT_MS", "100", 1);
        const std::string rdir =
            dir + "/w" + std::to_string(worker_index);
        fs::create_directories(rdir);
        setenv("PSCA_REPORT_DIR", rdir.c_str(), 1);
    }
    // The bench parent already sits inside guardedMain, so the
    // child's call is the nested (pass-through) form — it will not
    // arm the distribution layer itself. Do it explicitly around
    // the body.
    dist::maybeInitFromEnv();
    const int rc =
        runner::guardedMain([] { return childPipeline(); });
    dist::shutdown();
    _exit(rc);
}

int
run()
{
    ReportGuard report("chaos");
    banner("Chaos soak: fleet under seeded network faults + "
           "coordinator crash-resume");
    auto &reg = obs::StatRegistry::instance();

    const int workers = static_cast<int>(
        env::intOr("PSCA_CHAOS_WORKERS", 3, 1, 16));
    const auto seed = static_cast<uint64_t>(
        env::intOr("PSCA_CHAOS_SEED", 1234, 0,
                   std::numeric_limits<long long>::max()));

    // Clean single-process reference.
    const std::string ref_dir = scratchDir("ref");
    {
        std::fflush(nullptr);
        const pid_t pid = fork();
        if (pid == 0) {
            setenv("PSCA_CACHE_DIR", ref_dir.c_str(), 1);
            setenv("PSCA_REPORT_DIR", ref_dir.c_str(), 1);
            setenv("PSCA_FAULTS", "", 1);
            _exit(runner::guardedMain([] { return childPipeline(); }));
        }
        int status = 0;
        waitpid(pid, &status, 0);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            std::fprintf(stderr,
                         "chaos: reference run failed; aborting\n");
            return 1;
        }
    }

    // Seeded fault schedule: rates drawn once from the chaos seed,
    // per-fire decisions drawn by the children from the same seed
    // through the PSCA_FAULTS substream machinery.
    Rng rng(mixSeeds(seed, 0x43484153u /* "CHAS" */));
    std::ostringstream spec;
    spec << "net.frame_corrupt:" << rng.uniform(0.002, 0.02)
         << ",net.torn_send:" << rng.uniform(0.002, 0.02)
         << ",net.conn_reset:" << rng.uniform(0.002, 0.02)
         << ",net.recv_stall:" << rng.uniform(0.01, 0.05) << ":20"
         << ",net.heartbeat_drop:0.2"
         << ",net.dup_result:" << rng.uniform(0.05, 0.2);
    const uint64_t kill_at = 1 + rng.below(3);
    std::printf("schedule (seed %llu): %s\n",
                static_cast<unsigned long long>(seed),
                spec.str().c_str());
    std::printf("coordinator SIGKILL after %llu journal entries, "
                "%d workers\n\n",
                static_cast<unsigned long long>(kill_at), workers);

    const std::string dir = scratchDir("run");
    const auto t0 = std::chrono::steady_clock::now();
    auto since = [&t0] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };
    emitEvent("chaos", LogLevel::Info, "fleet launched");
    pid_t coord = forkFleetChild("coordinator", dir, workers, 0,
                                 spec.str(), seed);
    std::vector<pid_t> kids;
    for (int i = 1; i <= workers; ++i)
        kids.push_back(forkFleetChild("worker", dir, workers, i,
                                      spec.str(), seed));

    // Wait for mid-scope progress, then kill the coordinator and
    // start its replacement — the journal replays, the workers
    // rejoin through the republished address file.
    const std::string journal_path = dir + "/journal.psj";
    int kills = 0;
    for (int spins = 0; spins < 120000; ++spins) {
        if (Journal::countEntries(journal_path) >= kill_at) {
            if (kill(coord, SIGKILL) == 0)
                kills = 1;
            break;
        }
        int status = 0;
        if (waitpid(coord, &status, WNOHANG) == coord) {
            std::fprintf(stderr, "chaos: coordinator exited before "
                                 "reaching the kill point\n");
            coord = -1;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (kills == 1) {
        int status = 0;
        waitpid(coord, &status, 0);
        std::printf("[%7.3f s] coordinator SIGKILLed (journal at "
                    "%llu entries)\n",
                    since(),
                    static_cast<unsigned long long>(kill_at));
        emitEvent("chaos", LogLevel::Warn,
                  "coordinator SIGKILLed mid-scope");
        coord = forkFleetChild("coordinator", dir, workers, 0,
                               spec.str(), seed);
        std::printf("[%7.3f s] replacement coordinator started\n",
                    since());
        emitEvent("chaos", LogLevel::Info,
                  "replacement coordinator started");
    }

    int rc = 0;
    if (coord > 0) {
        int status = 0;
        waitpid(coord, &status, 0);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
            rc = 1;
    }
    for (pid_t w : kids) {
        int status = 0;
        waitpid(w, &status, 0);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
            rc = 1;
    }
    std::printf("[%7.3f s] fleet drained (rc %d)\n", since(), rc);

    // Byte-identity verdict: result artifact + every corpus cache
    // file must match the clean reference exactly.
    int compared = 0;
    int mismatched = 0;
    for (const auto &e : fs::directory_iterator(ref_dir)) {
        const std::string name = e.path().filename().string();
        if (name != "result.bin" && name.rfind("chaosb_", 0) != 0)
            continue;
        ++compared;
        if (slurp(dir + "/" + name) != slurp(ref_dir + "/" + name)) {
            ++mismatched;
            std::fprintf(stderr, "chaos: artifact DIVERGED: %s\n",
                         name.c_str());
        }
    }

    const std::string coord_report = dir + "/chaos_fleet.json";
    const double rejoins = reportValue(coord_report, "dist.rejoins");
    const double duplicates =
        reportValue(coord_report, "dist.duplicate_results");
    double fallbacks =
        reportValue(coord_report, "dist.local_fallbacks");
    double net_fires = 0.0;
    static const char *const kNetSites[] = {
        "net.frame_corrupt", "net.torn_send",      "net.conn_reset",
        "net.recv_stall",    "net.heartbeat_drop", "net.dup_result"};
    std::vector<std::string> reports = {coord_report};
    for (int i = 1; i <= workers; ++i)
        reports.push_back(dir + "/w" + std::to_string(i) +
                          "/chaos_fleet.json");
    for (const auto &r : reports) {
        fallbacks += r == coord_report
            ? 0.0
            : reportValue(r, "dist.local_fallbacks");
        for (const char *site : kNetSites)
            net_fires += reportValue(
                r, std::string("fault.") + site + ".fires");
    }

    reg.gauge("chaos.workers").set(workers);
    reg.gauge("chaos.seed").set(static_cast<double>(seed));
    reg.gauge("chaos.kill_after_entries")
        .set(static_cast<double>(kill_at));
    reg.gauge("chaos.coordinator_kills").set(kills);
    reg.gauge("chaos.artifacts_compared").set(compared);
    reg.gauge("chaos.artifact_mismatches").set(mismatched);
    reg.gauge("chaos.rejoins").set(rejoins);
    reg.gauge("chaos.local_fallbacks").set(fallbacks);
    reg.gauge("chaos.duplicate_results").set(duplicates);
    reg.gauge("chaos.net_fault_fires").set(net_fires);

    const bool pass = rc == 0 && compared >= 1 && mismatched == 0 &&
        kills >= 1 && rejoins >= 1 && fallbacks == 0;
    std::printf("\n%d artifacts compared, %d diverged; %d "
                "coordinator kill(s); %.0f rejoin(s), %.0f local "
                "fallback(s), %.0f duplicate result(s), %.0f net "
                "fault fire(s)\n",
                compared, mismatched, kills, rejoins, fallbacks,
                duplicates, net_fires);
    std::printf("chaos soak: %s\n",
                pass ? "PASS — artifacts byte-identical under "
                       "faults + coordinator crash-resume"
                     : "FAIL");
    return pass ? 0 : 1;
}

} // namespace

int
main()
{
    return psca::runner::guardedMain(run);
}
