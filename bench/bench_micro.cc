/**
 * @file
 * Google-benchmark microbenchmarks: adaptation-model inference
 * latency (native and firmware-VM), timing-model simulation
 * throughput, and trace-generation throughput. These bound the cost
 * of corpus-scale experiments and document the substrate's speed.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "ml/linear.hh"
#include "ml/mlp.hh"
#include "ml/tree.hh"
#include "sim/core.hh"
#include "trace/generator.hh"
#include "uc/compilers.hh"

using namespace psca;

namespace {

Dataset
randomData(size_t n, size_t features, uint64_t seed)
{
    Rng rng(seed);
    Dataset d;
    d.numFeatures = features;
    std::vector<float> row(features);
    for (size_t i = 0; i < n; ++i) {
        float acc = 0.0f;
        for (auto &v : row) {
            v = static_cast<float>(rng.gaussian());
            acc += v;
        }
        d.addSample(row.data(), acc > 0 ? 1 : 0, 0, 0);
    }
    return d;
}

Workload
mixedWorkload()
{
    AppGenome g = sampleGenome(AppCategory::HpcPerf, 13);
    Workload w;
    w.genome = g;
    w.inputSeed = 1;
    w.lengthInstr = 1u << 30;
    w.name = "micro";
    return w;
}

void
BM_MlpInferenceNative(benchmark::State &state)
{
    const Dataset d = randomData(256, 12, 1);
    MlpConfig cfg;
    cfg.hiddenLayers = {8, 8, 4};
    cfg.epochs = 2;
    auto model = trainMlp(d, cfg);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model->score(d.row(i++ & 255)));
    }
}
BENCHMARK(BM_MlpInferenceNative);

void
BM_MlpInferenceFirmwareVm(benchmark::State &state)
{
    const Dataset d = randomData(256, 12, 2);
    MlpConfig cfg;
    cfg.hiddenLayers = {8, 8, 4};
    cfg.epochs = 2;
    auto model = trainMlp(d, cfg);
    const UcProgram prog = compileMlp(*model);
    UcVm vm;
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(vm.run(prog, d.row(i++ & 255), 12));
    }
}
BENCHMARK(BM_MlpInferenceFirmwareVm);

void
BM_ForestInferenceNative(benchmark::State &state)
{
    const Dataset d = randomData(512, 12, 3);
    ForestConfig fc;
    fc.numTrees = 8;
    fc.maxDepth = 8;
    RandomForest forest(d, fc);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(forest.score(d.row(i++ & 511)));
    }
}
BENCHMARK(BM_ForestInferenceNative);

void
BM_ForestInferenceFirmwareVm(benchmark::State &state)
{
    const Dataset d = randomData(512, 12, 4);
    ForestConfig fc;
    fc.numTrees = 8;
    fc.maxDepth = 8;
    RandomForest forest(d, fc);
    const UcProgram prog = compileForest(forest);
    UcVm vm;
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(vm.run(prog, d.row(i++ & 511), 12));
    }
}
BENCHMARK(BM_ForestInferenceFirmwareVm);

void
BM_LogisticInference(benchmark::State &state)
{
    const Dataset d = randomData(256, 12, 5);
    LogisticRegression lr(d, LogRegConfig{});
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(lr.score(d.row(i++ & 255)));
    }
}
BENCHMARK(BM_LogisticInference);

void
BM_TraceGeneration(benchmark::State &state)
{
    TraceGenerator gen(mixedWorkload());
    std::vector<MicroOp> buf;
    for (auto _ : state) {
        buf.clear();
        gen.fill(buf, 4096);
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_TraceGeneration);

void
BM_CoreSimulation(benchmark::State &state)
{
    const CoreMode mode = state.range(0) == 0 ? CoreMode::HighPerf
                                              : CoreMode::LowPower;
    ClusteredCore core;
    core.reset();
    core.setMode(mode);
    TraceGenerator gen(mixedWorkload());
    for (auto _ : state) {
        core.run(gen, 10000);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
    state.SetLabel(mode == CoreMode::HighPerf ? "high_perf"
                                              : "low_power");
}
BENCHMARK(BM_CoreSimulation)->Arg(0)->Arg(1);

void
BM_ForestTraining(benchmark::State &state)
{
    const Dataset d =
        randomData(static_cast<size_t>(state.range(0)), 12, 6);
    for (auto _ : state) {
        ForestConfig fc;
        fc.numTrees = 8;
        fc.maxDepth = 8;
        RandomForest forest(d, fc);
        benchmark::DoNotOptimize(&forest);
    }
}
BENCHMARK(BM_ForestTraining)->Arg(1000)->Arg(8000);

void
BM_MlpTraining(benchmark::State &state)
{
    const Dataset d =
        randomData(static_cast<size_t>(state.range(0)), 12, 7);
    for (auto _ : state) {
        MlpConfig cfg;
        cfg.hiddenLayers = {8, 8, 4};
        cfg.epochs = 5;
        auto m = trainMlp(d, cfg);
        benchmark::DoNotOptimize(m.get());
    }
}
BENCHMARK(BM_MlpTraining)->Arg(1000)->Arg(4000);

} // namespace

BENCHMARK_MAIN();
