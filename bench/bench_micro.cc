/**
 * @file
 * Google-benchmark microbenchmarks: adaptation-model inference
 * latency (native and firmware-VM), timing-model simulation
 * throughput, trace-generation throughput, and the parallel
 * execution layer (pool dispatch overhead, crossval fan-out scaling).
 * These bound the cost of corpus-scale experiments and document the
 * substrate's speed. On exit the measured crossval serial-vs-parallel
 * speedup is recorded as gauges in BENCH_micro.json.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "core/crossval.hh"
#include "ml/linear.hh"
#include "ml/mlp.hh"
#include "ml/quant.hh"
#include "ml/tree.hh"
#include "obs/phase.hh"
#include "obs/stats.hh"
#include "sim/core.hh"
#include "trace/decoded.hh"
#include "trace/generator.hh"
#include "uc/compilers.hh"
#include "core/runner.hh"

using namespace psca;

namespace {

Dataset
randomData(size_t n, size_t features, uint64_t seed)
{
    Rng rng(seed);
    Dataset d;
    d.numFeatures = features;
    std::vector<float> row(features);
    for (size_t i = 0; i < n; ++i) {
        float acc = 0.0f;
        for (auto &v : row) {
            v = static_cast<float>(rng.gaussian());
            acc += v;
        }
        d.addSample(row.data(), acc > 0 ? 1 : 0, 0, 0);
    }
    return d;
}

/** Multi-app dataset so appLevelSplit has real groups to partition. */
Dataset
groupedData(size_t apps, size_t per_app, uint64_t seed)
{
    Rng rng(seed);
    Dataset d;
    d.numFeatures = 12;
    std::vector<float> row(d.numFeatures);
    for (size_t a = 0; a < apps; ++a) {
        for (size_t i = 0; i < per_app; ++i) {
            float acc = 0.0f;
            for (auto &v : row) {
                v = static_cast<float>(rng.gaussian());
                acc += v;
            }
            d.addSample(row.data(), acc > 0 ? 1 : 0,
                        static_cast<uint32_t>(a),
                        static_cast<uint32_t>(a * 8 + i % 4));
        }
    }
    return d;
}

/** The crossval fan-out benched below and timed for the report. */
CrossValSummary
runCrossvalFanout(const Dataset &d)
{
    CrossValOptions opts;
    opts.folds = 8;
    opts.seed = 11;
    opts.rsvWindow = 32;
    return crossValidate(
        d,
        [](const Dataset &tune, uint64_t fold_seed) {
            ForestConfig fc;
            fc.numTrees = 8;
            fc.maxDepth = 6;
            fc.seed = fold_seed;
            return std::make_unique<RandomForest>(tune, fc);
        },
        opts);
}

Workload
mixedWorkload()
{
    AppGenome g = sampleGenome(AppCategory::HpcPerf, 13);
    Workload w;
    w.genome = g;
    w.inputSeed = 1;
    w.lengthInstr = 1u << 30;
    w.name = "micro";
    return w;
}

void
BM_MlpInferenceNative(benchmark::State &state)
{
    const Dataset d = randomData(256, 12, 1);
    MlpConfig cfg;
    cfg.hiddenLayers = {8, 8, 4};
    cfg.epochs = 2;
    auto model = trainMlp(d, cfg);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model->score(d.row(i++ & 255)));
    }
}
BENCHMARK(BM_MlpInferenceNative);

void
BM_MlpInferenceFirmwareVm(benchmark::State &state)
{
    const Dataset d = randomData(256, 12, 2);
    MlpConfig cfg;
    cfg.hiddenLayers = {8, 8, 4};
    cfg.epochs = 2;
    auto model = trainMlp(d, cfg);
    const UcProgram prog = compileMlp(*model);
    UcVm vm;
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(vm.run(prog, d.row(i++ & 255), 12));
    }
}
BENCHMARK(BM_MlpInferenceFirmwareVm);

void
BM_ForestInferenceNative(benchmark::State &state)
{
    const Dataset d = randomData(512, 12, 3);
    ForestConfig fc;
    fc.numTrees = 8;
    fc.maxDepth = 8;
    RandomForest forest(d, fc);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(forest.score(d.row(i++ & 511)));
    }
}
BENCHMARK(BM_ForestInferenceNative);

void
BM_ForestInferenceFirmwareVm(benchmark::State &state)
{
    const Dataset d = randomData(512, 12, 4);
    ForestConfig fc;
    fc.numTrees = 8;
    fc.maxDepth = 8;
    RandomForest forest(d, fc);
    const UcProgram prog = compileForest(forest);
    UcVm vm;
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(vm.run(prog, d.row(i++ & 511), 12));
    }
}
BENCHMARK(BM_ForestInferenceFirmwareVm);

void
BM_LogisticInference(benchmark::State &state)
{
    const Dataset d = randomData(256, 12, 5);
    LogisticRegression lr(d, LogRegConfig{});
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(lr.score(d.row(i++ & 255)));
    }
}
BENCHMARK(BM_LogisticInference);

void
BM_TraceGeneration(benchmark::State &state)
{
    TraceGenerator gen(mixedWorkload());
    std::vector<MicroOp> buf;
    for (auto _ : state) {
        buf.clear();
        gen.fill(buf, 4096);
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_TraceGeneration);

void
BM_CoreSimulation(benchmark::State &state)
{
    const CoreMode mode = state.range(0) == 0 ? CoreMode::HighPerf
                                              : CoreMode::LowPower;
    ClusteredCore core;
    core.reset();
    core.setMode(mode);
    TraceGenerator gen(mixedWorkload());
    for (auto _ : state) {
        core.run(gen, 10000);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
    state.SetLabel(mode == CoreMode::HighPerf ? "high_perf"
                                              : "low_power");
}
BENCHMARK(BM_CoreSimulation)->Arg(0)->Arg(1);

void
BM_DecodedReplay(benchmark::State &state)
{
    // Pure replay of a pre-decoded SoA trace: no generation, no
    // decode — the hot loop the dataset builder runs after its one
    // decode pass (and what the perf-smoke job tracks).
    constexpr size_t kUops = 1u << 21;
    TraceGenerator gen(mixedWorkload());
    const DecodedTrace trace = decodeTrace(gen, kUops);
    ClusteredCore core;
    core.reset();
    core.setMode(CoreMode::HighPerf);
    size_t base = 0;
    for (auto _ : state) {
        core.run(trace, base, 10000);
        base += 10000;
        if (base + 10000 > trace.size())
            base = 0;
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_DecodedReplay);

void
BM_BatchedReplay(benchmark::State &state)
{
    // Lockstep batched replay (DESIGN.md §14): `lanes` independent
    // cores advance one uop per trip, overlapping their serial
    // timestamp chains. Items processed counts all lanes.
    const size_t lanes = static_cast<size_t>(state.range(0));
    constexpr uint64_t kInterval = 10000;
    constexpr size_t kUops = 1u << 21;
    TraceGenerator gen(mixedWorkload());
    const DecodedTrace trace = decodeTrace(gen, kUops);
    std::vector<std::unique_ptr<ClusteredCore>> cores;
    for (size_t i = 0; i < lanes; ++i) {
        cores.push_back(std::make_unique<ClusteredCore>());
        cores[i]->reset();
        cores[i]->setMode(CoreMode::HighPerf);
    }
    std::vector<ReplayLane> ls(lanes);
    size_t base = 0;
    for (auto _ : state) {
        for (size_t i = 0; i < lanes; ++i) {
            ls[i].core = cores[i].get();
            ls[i].trace = &trace;
            ls[i].begin = base;
            ls[i].n = kInterval;
        }
        ClusteredCore::runBatch(ls.data(), lanes);
        base += kInterval;
        if (base + kInterval > trace.size())
            base = 0;
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(lanes * kInterval));
    state.SetLabel("lanes=" + std::to_string(lanes));
}
BENCHMARK(BM_BatchedReplay)->Arg(4)->Arg(8)->Arg(16);

void
BM_PredictBatch_forest(benchmark::State &state)
{
    const Dataset d = randomData(4096, 12, 9);
    ForestConfig fc;
    fc.numTrees = 8;
    fc.maxDepth = 8;
    RandomForest forest(d, fc);
    std::vector<double> out(d.numSamples());
    for (auto _ : state) {
        forest.scoreBatch(d.x.data(),
                          static_cast<int>(d.numSamples()),
                          out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(d.numSamples()));
}
BENCHMARK(BM_PredictBatch_forest);

void
BM_PredictBatch_mlp(benchmark::State &state)
{
    const Dataset d = randomData(4096, 12, 10);
    MlpConfig cfg;
    cfg.hiddenLayers = {8, 8, 4};
    cfg.epochs = 2;
    auto model = trainMlp(d, cfg);
    std::vector<double> out(d.numSamples());
    for (auto _ : state) {
        model->scoreBatch(d.x.data(),
                          static_cast<int>(d.numSamples()),
                          out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(d.numSamples()));
    state.SetLabel(simd::levelName(simd::activeLevel()));
}
BENCHMARK(BM_PredictBatch_mlp);

void
BM_PredictQuant(benchmark::State &state)
{
    // Int8 fixed-point scoring (the PSCA_UC_FIXED firmware path).
    const Dataset d = randomData(4096, 12, 11);
    ForestConfig fc;
    fc.numTrees = 8;
    fc.maxDepth = 8;
    RandomForest forest(d, fc);
    const quant::QuantizedForest qf =
        quant::QuantizedForest::fromForest(forest);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(qf.score(d.row(i++ & 4095)));
    }
}
BENCHMARK(BM_PredictQuant);

void
BM_CoreSimulationAosOracle(benchmark::State &state)
{
    // The retired AoS path, kept as a correctness oracle; benched so
    // regressions in the SoA win show up as a shrinking gap.
    ClusteredCore core;
    core.reset();
    core.setMode(CoreMode::HighPerf);
    core.setReplayPath(ReplayPath::AosOracle);
    TraceGenerator gen(mixedWorkload());
    for (auto _ : state) {
        core.run(gen, 10000);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_CoreSimulationAosOracle);

void
BM_TraceDecode(benchmark::State &state)
{
    // One-time cost amortized across every replay of a trace.
    TraceGenerator gen(mixedWorkload());
    DecodedTrace trace;
    trace.reserve(1u << 16);
    for (auto _ : state) {
        trace.clear();
        gen.fillDecoded(trace, 1u << 16);
        benchmark::DoNotOptimize(trace.size());
    }
    state.SetItemsProcessed(state.iterations() * (1u << 16));
}
BENCHMARK(BM_TraceDecode);

void
BM_ForestTraining(benchmark::State &state)
{
    const Dataset d =
        randomData(static_cast<size_t>(state.range(0)), 12, 6);
    for (auto _ : state) {
        ForestConfig fc;
        fc.numTrees = 8;
        fc.maxDepth = 8;
        RandomForest forest(d, fc);
        benchmark::DoNotOptimize(&forest);
    }
}
BENCHMARK(BM_ForestTraining)->Arg(1000)->Arg(8000);

void
BM_MlpTraining(benchmark::State &state)
{
    const Dataset d =
        randomData(static_cast<size_t>(state.range(0)), 12, 7);
    for (auto _ : state) {
        MlpConfig cfg;
        cfg.hiddenLayers = {8, 8, 4};
        cfg.epochs = 5;
        auto m = trainMlp(d, cfg);
        benchmark::DoNotOptimize(m.get());
    }
}
BENCHMARK(BM_MlpTraining)->Arg(1000)->Arg(4000);

void
BM_PoolDispatchOverhead(benchmark::State &state)
{
    // Cost of fanning out n trivial tasks: the fixed price every
    // parallelized loop pays per region.
    ThreadPool pool(static_cast<int>(state.range(0)));
    const size_t n = static_cast<size_t>(state.range(1));
    for (auto _ : state) {
        pool.parallelFor(n, [](size_t i) {
            benchmark::DoNotOptimize(i);
        });
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(n));
    state.SetLabel("threads=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_PoolDispatchOverhead)
    ->Args({1, 64})
    ->Args({2, 64})
    ->Args({4, 64})
    ->Args({4, 1024});

void
BM_PhaseScope(benchmark::State &state)
{
    // The phase-tracing hot path: push/pop of a cached (parent,name)
    // node. Sharded wall-time credit keeps this lock-free in steady
    // state, so the multi-threaded variant must not collapse — this
    // is the overhead every instrumented scope pays.
    for (auto _ : state) {
        obs::ScopedPhase scope("bench.phase_scope");
        benchmark::DoNotOptimize(&scope);
    }
}
BENCHMARK(BM_PhaseScope)->Threads(1)->Threads(4);

void
BM_CrossvalFanout(benchmark::State &state)
{
    // End-to-end 8-fold crossval (forest factory) at a given thread
    // count — the headline fan-out of the parallel layer.
    const Dataset d = groupedData(16, 120, 8);
    ThreadPool::configure(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        const CrossValSummary s = runCrossvalFanout(d);
        benchmark::DoNotOptimize(s.pgosMean);
    }
    ThreadPool::configure(1);
    state.SetLabel("threads=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_CrossvalFanout)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

/**
 * Wall-clock the crossval fan-out once serially and once at the
 * requested thread count, and record both (plus the ratio) as gauges
 * so BENCH_micro.json documents the machine's parallel speedup.
 */
void
recordCrossvalSpeedup()
{
    using clock = std::chrono::steady_clock;
    const Dataset d = groupedData(16, 120, 8);
    const int threads = parallelThreadCount();

    auto time_run = [&](int n) {
        ThreadPool::configure(n);
        runCrossvalFanout(d); // warm caches / page in
        const auto start = clock::now();
        runCrossvalFanout(d);
        return std::chrono::duration<double, std::milli>(
                   clock::now() - start)
            .count();
    };
    const double serial_ms = time_run(1);
    const double parallel_ms = time_run(threads);
    ThreadPool::configure(threads);

    auto &reg = obs::StatRegistry::instance();
    reg.gauge("parallel.threads").set(threads);
    reg.gauge("parallel.crossval_serial_ms").set(serial_ms);
    reg.gauge("parallel.crossval_parallel_ms").set(parallel_ms);
    reg.gauge("parallel.crossval_speedup")
        .set(parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0);
    std::printf("crossval fan-out: %.1f ms serial, %.1f ms on %d "
                "threads (%.2fx)\n",
                serial_ms, parallel_ms, threads,
                parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0);
}

/**
 * Wall-clock the SoA replay against the AoS oracle on the same
 * 2M-uop trace (best of three passes each, to ride out machine
 * noise) and record both as gauges, so BENCH_micro.json documents
 * the data-layout win next to the whole-run sim.replay_* gauges the
 * ReportGuard derives.
 */
void
recordReplayThroughput()
{
    using clock = std::chrono::steady_clock;
    constexpr uint64_t kInterval = 10000;
    constexpr uint64_t kIntervals = (1u << 21) / kInterval;
    constexpr uint64_t kUops = kIntervals * kInterval;
    const Workload w = mixedWorkload();

    TraceGenerator dec_gen(w);
    const DecodedTrace trace = decodeTrace(dec_gen, kUops);

    auto best_muops = [&](auto &&pass) {
        double best = 0.0;
        for (int rep = 0; rep < 3; ++rep) {
            const auto start = clock::now();
            pass();
            const double s =
                std::chrono::duration<double>(clock::now() - start)
                    .count();
            const double muops = s > 0.0 ? kUops / s / 1e6 : 0.0;
            if (muops > best)
                best = muops;
        }
        return best;
    };

    const double soa = best_muops([&] {
        ClusteredCore core;
        core.reset();
        core.setMode(CoreMode::HighPerf);
        for (uint64_t t = 0; t < kIntervals; ++t)
            core.run(trace, t * kInterval, kInterval);
    });
    const double aos = best_muops([&] {
        ClusteredCore core;
        core.reset();
        core.setMode(CoreMode::HighPerf);
        core.setReplayPath(ReplayPath::AosOracle);
        TraceGenerator gen(w);
        for (uint64_t t = 0; t < kIntervals; ++t)
            core.run(gen, kInterval);
    });

    auto &reg = obs::StatRegistry::instance();
    reg.gauge("sim.replay_soa_muops_per_s").set(soa);
    reg.gauge("sim.replay_aos_muops_per_s").set(aos);
    std::printf("replay throughput: %.1f Muops/s SoA, %.1f Muops/s "
                "AoS oracle (%.2fx)\n",
                soa, aos, aos > 0.0 ? soa / aos : 0.0);
}

/**
 * Wall-clock the lockstep batched replay (best of three passes) and
 * record aggregate Muops/s next to the serial SoA gauge, so the
 * perf-smoke job ratchets the batching win. Lanes replay the same
 * trace from the same offset — the throughput number counts uops
 * retired across all lanes per wall-second, which is how the dataset
 * builder consumes the kernel (many chips, one trace).
 */
void
recordBatchedReplayThroughput()
{
    using clock = std::chrono::steady_clock;
    constexpr uint64_t kInterval = 10000;
    constexpr uint64_t kIntervals = (1u << 21) / kInterval;
    constexpr uint64_t kUops = kIntervals * kInterval;
    constexpr size_t kLanes = 8;
    TraceGenerator gen(mixedWorkload());
    const DecodedTrace trace = decodeTrace(gen, kUops);

    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        std::vector<std::unique_ptr<ClusteredCore>> cores;
        for (size_t i = 0; i < kLanes; ++i) {
            cores.push_back(std::make_unique<ClusteredCore>());
            cores[i]->reset();
            cores[i]->setMode(CoreMode::HighPerf);
        }
        std::vector<ReplayLane> lanes(kLanes);
        const auto start = clock::now();
        for (uint64_t t = 0; t < kIntervals; ++t) {
            for (size_t i = 0; i < kLanes; ++i) {
                lanes[i].core = cores[i].get();
                lanes[i].trace = &trace;
                lanes[i].begin = t * kInterval;
                lanes[i].n = kInterval;
            }
            ClusteredCore::runBatch(lanes.data(), kLanes);
        }
        const double s =
            std::chrono::duration<double>(clock::now() - start)
                .count();
        const double muops =
            s > 0.0 ? kUops * kLanes / s / 1e6 : 0.0;
        if (muops > best)
            best = muops;
    }
    obs::StatRegistry::instance()
        .gauge("sim.replay_batched_muops_per_s")
        .set(best);
    std::printf("batched replay: %.1f Muops/s aggregate over %zu "
                "lanes\n",
                best, kLanes);
}

/**
 * Wall-clock scoreBatch against the per-sample score loop for the
 * forest and the MLP (best of three passes each) and record the
 * throughputs plus speedup ratios as gauges. The forest ratio is the
 * headline ≥4x batching target the perf-smoke job enforces.
 */
void
recordPredictBatchSpeedup()
{
    using clock = std::chrono::steady_clock;
    constexpr size_t kSamples = 4096;
    constexpr int kPasses = 8;
    const Dataset d = randomData(kSamples, 12, 12);

    auto best_mpred = [&](auto &&pass) {
        double best = 0.0;
        for (int rep = 0; rep < 3; ++rep) {
            const auto start = clock::now();
            for (int p = 0; p < kPasses; ++p)
                pass();
            const double s =
                std::chrono::duration<double>(clock::now() - start)
                    .count();
            const double mpred =
                s > 0.0 ? kPasses * kSamples / s / 1e6 : 0.0;
            if (mpred > best)
                best = mpred;
        }
        return best;
    };

    auto record = [&](const char *key, const Model &model) {
        std::vector<double> out(kSamples);
        const double scalar = best_mpred([&] {
            for (size_t i = 0; i < kSamples; ++i)
                out[i] = model.score(d.row(i));
            benchmark::DoNotOptimize(out.data());
        });
        const double batch = best_mpred([&] {
            model.scoreBatch(d.x.data(), static_cast<int>(kSamples),
                             out.data());
            benchmark::DoNotOptimize(out.data());
        });
        const double speedup = scalar > 0.0 ? batch / scalar : 0.0;
        auto &reg = obs::StatRegistry::instance();
        reg.gauge(std::string("ml.predict_scalar_") + key +
                  "_mpred_per_s")
            .set(scalar);
        reg.gauge(std::string("ml.predict_batch_") + key +
                  "_mpred_per_s")
            .set(batch);
        reg.gauge(std::string("ml.predict_batch_") + key + "_speedup")
            .set(speedup);
        std::printf("%s inference: %.2f Mpred/s scalar, %.2f Mpred/s "
                    "batched (%.2fx, simd=%s)\n",
                    key, scalar, batch, speedup,
                    simd::levelName(simd::activeLevel()));
    };

    ForestConfig fc;
    fc.numTrees = 8;
    fc.maxDepth = 8;
    record("forest", RandomForest(d, fc));

    MlpConfig mc;
    mc.hiddenLayers = {8, 8, 4};
    mc.epochs = 2;
    const auto mlp = trainMlp(d, mc);
    record("mlp", *mlp);
}

/**
 * Wall-clock the phase-scope push/pop at one and four threads and
 * record ns-per-scope gauges, so BENCH_micro.json tracks the cost of
 * the sharded tracer hot path (a contended-mutex regression shows up
 * as the 4-thread number exploding relative to the 1-thread one).
 */
void
recordPhaseOverhead()
{
    using clock = std::chrono::steady_clock;
    constexpr int kScopesPerThread = 200000;

    auto time_threads = [&](int n) {
        std::vector<std::thread> workers;
        const auto start = clock::now();
        for (int t = 0; t < n; ++t) {
            workers.emplace_back([] {
                for (int i = 0; i < kScopesPerThread; ++i) {
                    obs::ScopedPhase scope("bench.phase_overhead");
                    benchmark::DoNotOptimize(&scope);
                }
            });
        }
        for (auto &w : workers)
            w.join();
        const double s =
            std::chrono::duration<double>(clock::now() - start)
                .count();
        return s * 1e9 / kScopesPerThread; // ns per scope per thread
    };
    const double ns_1t = time_threads(1);
    const double ns_4t = time_threads(4);

    auto &reg = obs::StatRegistry::instance();
    reg.gauge("phase.scope_ns_1t").set(ns_1t);
    reg.gauge("phase.scope_ns_4t").set(ns_4t);
    std::printf("phase scope overhead: %.0f ns/scope at 1 thread, "
                "%.0f ns/scope at 4 threads\n",
                ns_1t, ns_4t);
}

} // namespace

static int
run(int argc, char **argv)
{
    // Destructs last: the report captures the speedup gauges below.
    bench::ReportGuard report("micro");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    recordReplayThroughput();
    recordBatchedReplayThroughput();
    recordPredictBatchSpeedup();
    recordCrossvalSpeedup();
    recordPhaseOverhead();
    return 0;
}

int
main(int argc, char **argv)
{
    return psca::runner::guardedMain(
        [argc, argv] { return run(argc, argv); });
}
