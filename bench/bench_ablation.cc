/**
 * @file
 * Ablations of design choices the paper asserts but does not sweep:
 *
 *  1. prediction granularity (the paper states finest-granularity
 *     prediction maximizes PPW, citing prior work): Best-RF-style
 *     forests retrained at 10k..160k instructions;
 *  2. the fail-safe guardrail (Sec. 3.1 mentions it; the paper
 *     evaluates without it): PPW/RSV cost of arming it over a good
 *     model and over a deliberately blindspotted model (trained on
 *     only 10 applications, the Fig. 4 low-diversity regime).
 */

#include "bench_common.hh"

#include "core/guardrail.hh"
#include "core/runner.hh"

using namespace psca;
using namespace psca::bench;

namespace {

TrainedDual
trainRfAt(const ExperimentContext &ctx, uint64_t granularity,
          size_t max_apps)
{
    DualTrainOptions opts;
    opts.granularityInstr = granularity;
    opts.columns = ctx.plan.pfColumns(12);
    opts.rsvWindow = 400;
    std::vector<TraceRecord> records = ctx.hdtr;
    if (max_apps > 0) {
        records.clear();
        for (const auto &r : ctx.hdtr)
            if (r.appId < max_apps)
                records.push_back(r);
    }
    return trainDual(
        records, ctx.build, opts,
        [](const Dataset &tune, uint64_t s) -> std::unique_ptr<Model> {
            ForestConfig fc;
            fc.numTrees = 8;
            fc.maxDepth = 8;
            fc.seed = s;
            return std::make_unique<RandomForest>(tune, fc);
        });
}

} // namespace

static int
run()
{
    banner("Ablations -- granularity and the fail-safe guardrail");
    ReportGuard report("ablation");

    const ScaleConfig scale = ScaleConfig::fromEnv();
    ExperimentContext ctx = setupExperiment(scale, true);
    const auto traces = allTraceIndices(ctx);

    std::printf("granularity sweep (Best-RF forests retrained per "
                "granularity):\n");
    std::printf("%-14s %-12s %-10s %-10s\n", "granularity",
                "PPW gain", "RSV", "PGOS");
    for (uint64_t g : {10000, 20000, 40000, 80000, 160000}) {
        TrainedDual dual = trainRfAt(ctx, g, 0);
        DualModelPredictor pred(dual.high, dual.low,
                                ctx.plan.pfColumns(12), g, "rf");
        const SuiteResult r =
            evaluateSuite(ctx, pred, traces, 0.90);
        std::printf("%-14lu %+10.1f%% %8.2f%% %8.1f%%\n",
                    static_cast<unsigned long>(g), r.ppwGainPct,
                    r.rsvPct, r.pgosPct);
    }
    std::printf("(note: the 10k/20k rows exceed the Best RF ops "
                "budget and assume an accelerated microcontroller)\n");

    std::printf("\nguardrail ablation (40k granularity):\n");
    std::printf("%-28s %-12s %-10s %-10s\n", "configuration",
                "PPW gain", "RSV", "perf");
    for (bool low_diversity : {false, true}) {
        TrainedDual dual =
            trainRfAt(ctx, 40000, low_diversity ? 10 : 0);
        for (bool guarded : {false, true}) {
            DualModelPredictor inner(dual.high, dual.low,
                                     ctx.plan.pfColumns(12), 40000,
                                     "rf");
            std::unique_ptr<GuardrailedPredictor> rail;
            GatePredictor *pred = &inner;
            if (guarded) {
                rail = std::make_unique<GuardrailedPredictor>(inner);
                pred = rail.get();
            }
            const SuiteResult r =
                evaluateSuite(ctx, *pred, traces, 0.90);
            char label[64];
            std::snprintf(label, sizeof(label), "%s%s",
                          low_diversity ? "10-app model"
                                        : "full-HDTR model",
                          guarded ? " + guardrail" : "");
            std::printf("%-28s %+10.1f%% %8.2f%% %8.1f%%\n", label,
                        r.ppwGainPct, r.rsvPct, r.perfRelativePct);
        }
    }
    std::printf("\n(the guardrail bounds blindspot damage at a small "
                "PPW cost; the paper argues good training makes it "
                "nearly unnecessary)\n");
    return 0;
}

int
main()
{
    return psca::runner::guardedMain(run);
}
