/**
 * @file
 * Fixed-point firmware bench (ISSUE 8, DESIGN.md §14): what does the
 * int8 uc path (PSCA_UC_FIXED=1) cost in prediction quality and what
 * does it buy in the uc ops budget?
 *
 * Three sections, all recorded as gauges in BENCH_quant.json:
 *  1. Offline deltas per model class (forest / MLP / logistic):
 *     float vs quantized RSV, PGOS, decision-disagreement rate, plus
 *     the firmware ops-per-inference and table footprint of each
 *     path. Trees must show a zero delta — their traversal is
 *     bit-exact by construction.
 *  2. Observed vs provable logit error for the rounding models (MLP,
 *     logistic): the max |quantized - float| logit over the telemetry
 *     dataset against logitErrorBound().
 *  3. Closed-loop PPW/RSV: the same trained dual forest gating the
 *     same workload through a float firmware package and through a
 *     fixed-point package, with the uc ops actually consumed.
 */

#include <cstdio>
#include <cstdlib>

#include <algorithm>
#include <cmath>
#include <iterator>
#include <memory>
#include <vector>

#include "bench_common.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "core/builder.hh"
#include "core/controller.hh"
#include "core/crossval.hh"
#include "core/firmware_image.hh"
#include "core/pipeline.hh"
#include "core/runner.hh"
#include "ml/linear.hh"
#include "ml/mlp.hh"
#include "ml/quant.hh"
#include "ml/tree.hh"
#include "uc/compilers.hh"

using namespace psca;
using namespace psca::bench;

namespace {

/** Scalar float MLP forward returning the pre-sigmoid logit. */
double
floatLogit(const MlpModel &m, const float *x)
{
    std::vector<float> act(x, x + m.numInputs());
    std::vector<float> next;
    const auto &sizes = m.layerSizes();
    const size_t layers = sizes.size() - 1;
    for (size_t l = 0; l < layers; ++l) {
        const int fan_in = sizes[l];
        const int fan_out = sizes[l + 1];
        next.assign(static_cast<size_t>(fan_out), 0.0f);
        const bool last = l + 1 == layers;
        for (int f = 0; f < fan_out; ++f) {
            const float *row = m.weights(l).data() +
                static_cast<size_t>(f) * fan_in;
            float sum = m.biases(l)[static_cast<size_t>(f)];
            for (int i = 0; i < fan_in; ++i)
                sum += row[i] * act[static_cast<size_t>(i)];
            next[static_cast<size_t>(f)] =
                last ? sum : std::max(0.0f, sum);
        }
        act.swap(next);
    }
    return static_cast<double>(act[0]);
}

/** Float logistic-regression logit (weights dot x plus bias). */
double
floatLogit(const LogisticRegression &m, const float *x)
{
    double z = m.bias();
    for (size_t j = 0; j < m.numInputs(); ++j)
        z += m.coefficients()[j] * x[j];
    return z;
}

struct QuantDelta
{
    EvalResult floatEval;
    EvalResult quantEval;
    double disagreePct = 0.0;
    uint32_t floatOps = 0;
    uint32_t quantOps = 0;
    size_t quantBytes = 0;
};

/**
 * Evaluate @p model float vs quantized on @p data and compare the
 * firmware cost of each path (float: compiled UcProgram static ops;
 * quantized: the int8 cost model).
 */
QuantDelta
compareQuantized(const Model &model, const UcProgram &prog,
                 const Dataset &data, uint64_t rsv_window)
{
    const auto quantized = quant::quantize(model);
    PSCA_ASSERT(quantized != nullptr,
                "model class has no quantized form");

    QuantDelta d;
    d.floatEval = evaluateModel(model, data, rsv_window);
    d.quantEval = evaluateModel(*quantized, data, rsv_window);
    size_t disagree = 0;
    for (size_t i = 0; i < data.numSamples(); ++i)
        disagree += model.predict(data.row(i)) !=
            quantized->predict(data.row(i));
    d.disagreePct = data.numSamples() > 0
        ? 100.0 * static_cast<double>(disagree) /
            static_cast<double>(data.numSamples())
        : 0.0;
    d.floatOps = static_cast<uint32_t>(prog.staticOpCount());
    const std::string payload = quant::packPayload(model);
    d.quantOps = quant::payloadOps(payload);
    d.quantBytes = payload.size();
    return d;
}

void
printAndGaugeDelta(const char *key, const QuantDelta &d)
{
    auto &reg = obs::StatRegistry::instance();
    const std::string p = std::string("quant.") + key;
    reg.gauge(p + "_rsv_float_pct").set(d.floatEval.rsv * 100.0);
    reg.gauge(p + "_rsv_quant_pct").set(d.quantEval.rsv * 100.0);
    reg.gauge(p + "_rsv_delta_pct")
        .set((d.quantEval.rsv - d.floatEval.rsv) * 100.0);
    reg.gauge(p + "_pgos_delta_pct")
        .set((d.quantEval.pgos - d.floatEval.pgos) * 100.0);
    reg.gauge(p + "_disagree_pct").set(d.disagreePct);
    reg.gauge(p + "_ops_float").set(d.floatOps);
    reg.gauge(p + "_ops_int8").set(d.quantOps);
    reg.gauge(p + "_table_bytes").set(
        static_cast<double>(d.quantBytes));
    std::printf("%-8s rsv %.3f%% -> %.3f%% (delta %+.3f%%), pgos "
                "delta %+.3f%%, disagree %.3f%%, ops %u -> %u "
                "(%.2fx), tables %zu B\n",
                key, d.floatEval.rsv * 100.0, d.quantEval.rsv * 100.0,
                (d.quantEval.rsv - d.floatEval.rsv) * 100.0,
                (d.quantEval.pgos - d.floatEval.pgos) * 100.0,
                d.disagreePct, d.floatOps, d.quantOps,
                d.quantOps > 0
                    ? static_cast<double>(d.floatOps) / d.quantOps
                    : 0.0,
                d.quantBytes);
}

} // namespace

static int
run()
{
    banner("Int8 fixed-point uc path -- quality and ops-budget "
           "deltas");
    // Destructs last so the gauges below land in the report.
    ReportGuard report("quant");

    // Quickstart-style substrate: one recorded workload, PF-8
    // counters, dual forest.
    AppGenome app = sampleGenome(AppCategory::HpcPerf, 2025);
    Workload workload;
    workload.genome = app;
    workload.inputSeed = 1;
    workload.lengthInstr = 600000;
    workload.name = app.name;

    // Extra categories so the offline deltas are measured on more
    // than one behavior, not just the closed-loop workload.
    const AppCategory extraCats[] = {AppCategory::CloudSecurity,
                                     AppCategory::AiAnalytics,
                                     AppCategory::WebProductivity};

    BuildConfig build;
    build.counterIds = {
        CounterRegistry::index(Ctr::InstRetired),
        CounterRegistry::index(Ctr::StallCount),
        CounterRegistry::index(Ctr::L1dMiss),
        CounterRegistry::index(Ctr::LoadLatSum),
        CounterRegistry::index(Ctr::MshrOccSum),
        CounterRegistry::index(Ctr::UopsStalledOnDep),
        CounterRegistry::index(Ctr::UopsReady),
        CounterRegistry::index(Ctr::SqOccSum),
    };
    const TraceRecord record = recordTrace(workload, build, 0, 0);
    std::vector<TraceRecord> corpus = {record};
    for (size_t i = 0; i < std::size(extraCats); ++i) {
        Workload extra;
        extra.genome = sampleGenome(extraCats[i], 100 + i);
        extra.inputSeed = 1;
        extra.lengthInstr = 2000000;
        extra.name = extra.genome.name;
        corpus.push_back(recordTrace(extra, build,
                                     static_cast<uint32_t>(i + 1),
                                     static_cast<uint32_t>(i + 1)));
    }

    DualTrainOptions opts;
    opts.granularityInstr = 40000;
    opts.columns = {0, 1, 2, 3, 4, 5, 6, 7};
    opts.rsvWindow = 400;
    TrainedDual dual = trainDual(
        corpus, build, opts,
        [](const Dataset &tune,
           uint64_t seed) -> std::unique_ptr<Model> {
            ForestConfig fc;
            fc.numTrees = 8;
            fc.maxDepth = 8;
            fc.seed = seed;
            return std::make_unique<RandomForest>(tune, fc);
        });

    // Scaled telemetry dataset (low-power features, as deployment
    // sees them) for the offline sections.
    AssemblyOptions asmOpts;
    asmOpts.granularityInstr = opts.granularityInstr;
    asmOpts.pSla = opts.pSla;
    asmOpts.telemetryMode = CoreMode::LowPower;
    asmOpts.columns.assign(opts.columns.begin(), opts.columns.end());
    const Dataset raw =
        assembleDataset(corpus, asmOpts, build.intervalInstr);
    const Dataset scaled = dual.low.scaler.apply(raw);

    // How hard the int8 input grid works on this telemetry: values at the
    // rails are clamped (information loss); everything else only
    // snaps by <= 1/32. High clip rates would argue for a different
    // grid, so the report tracks them.
    size_t clipped = 0;
    double max_abs = 0.0;
    const size_t total =
        scaled.numSamples() * scaled.numFeatures;
    for (size_t i = 0; i < scaled.numSamples(); ++i) {
        const float *row = scaled.row(i);
        for (size_t j = 0; j < scaled.numFeatures; ++j) {
            max_abs = std::max(max_abs,
                               std::abs(static_cast<double>(row[j])));
            clipped += row[j] >= 127.5f / quant::kInputScale ||
                row[j] < -128.0f / quant::kInputScale;
        }
    }
    const double clip_pct = total > 0
        ? 100.0 * static_cast<double>(clipped) /
            static_cast<double>(total)
        : 0.0;
    obs::StatRegistry::instance()
        .gauge("quant.input_rail_clip_pct")
        .set(clip_pct);
    std::printf("\n-- offline float vs int8, %zu samples --\n"
                "input grid: max |z| %.2f, %.3f%% of values clipped "
                "at the grid rails\n",
                scaled.numSamples(), max_abs, clip_pct);

    // Forest: the deployed model. Traversal is bit-exact, so any
    // delta below comes purely from snapping inputs to the int8
    // grid, not from rounding inside the model.
    const auto *forest =
        dynamic_cast<const RandomForest *>(dual.low.model.get());
    PSCA_ASSERT(forest != nullptr, "dual slot is not a forest");
    const QuantDelta forest_delta = compareQuantized(
        *forest, compileForest(*forest), scaled, opts.rsvWindow);
    printAndGaugeDelta("forest", forest_delta);

    // MLP and logistic regression trained on the same telemetry, so
    // the rounding-error deltas are measured where they would deploy.
    MlpConfig mc;
    mc.hiddenLayers = {8, 8, 4};
    mc.epochs = 10;
    mc.seed = 7;
    const auto mlp = trainMlp(scaled, mc);
    const QuantDelta mlp_delta = compareQuantized(
        *mlp, compileMlp(*mlp), scaled, opts.rsvWindow);
    printAndGaugeDelta("mlp", mlp_delta);

    LogRegConfig lc;
    LogisticRegression logreg(scaled, lc);
    const QuantDelta lin_delta = compareQuantized(
        logreg, compileLogistic(logreg), scaled, opts.rsvWindow);
    printAndGaugeDelta("linear", lin_delta);

    // Section 2: observed logit error vs the provable bound, over
    // the whole telemetry dataset (errors measured against the float
    // model on the dequantized input, which is what the bound
    // promises).
    const quant::QuantizedMlp qmlp = quant::QuantizedMlp::fromMlp(*mlp);
    const quant::QuantizedLinear qlin =
        quant::QuantizedLinear::fromLogReg(logreg);
    double mlp_err = 0.0, lin_err = 0.0;
    std::vector<int8_t> qx(scaled.numFeatures);
    std::vector<float> deq(scaled.numFeatures);
    for (size_t i = 0; i < scaled.numSamples(); ++i) {
        quant::quantizeInputs(scaled.row(i), scaled.numFeatures,
                              qx.data());
        for (size_t j = 0; j < scaled.numFeatures; ++j)
            deq[j] = quant::dequantizeInput(qx[j]);
        mlp_err = std::max(mlp_err,
                           std::abs(qmlp.logitQuantized(qx.data()) -
                                    floatLogit(*mlp, deq.data())));
        lin_err = std::max(lin_err,
                           std::abs(qlin.logitQuantized(qx.data()) -
                                    floatLogit(logreg, deq.data())));
    }
    auto &reg = obs::StatRegistry::instance();
    reg.gauge("quant.mlp_logit_err_max").set(mlp_err);
    reg.gauge("quant.mlp_logit_err_bound").set(qmlp.logitErrorBound());
    reg.gauge("quant.linear_logit_err_max").set(lin_err);
    reg.gauge("quant.linear_logit_err_bound")
        .set(qlin.logitErrorBound());
    std::printf("\n-- logit error vs provable bound --\n"
                "mlp    observed %.3e <= bound %.3e\n"
                "linear observed %.3e <= bound %.3e\n",
                mlp_err, qmlp.logitErrorBound(), lin_err,
                qlin.logitErrorBound());
    PSCA_ASSERT(mlp_err <= qmlp.logitErrorBound() &&
                    lin_err <= qlin.logitErrorBound(),
                "observed logit error exceeds the provable bound");

    // Section 3: closed-loop gating through the firmware VM, float
    // package vs fixed-point package.
    DualModelPredictor predictor(dual.high, dual.low, opts.columns,
                                 opts.granularityInstr, "quant");
    std::vector<size_t> cols(opts.columns.begin(), opts.columns.end());

    unsetenv("PSCA_UC_FIXED");
    VmPredictor vm_float(packageFromDual(predictor, cols));
    const ClosedLoopResult float_run =
        runClosedLoop(workload, record, vm_float, build, SlaSpec{});

    setenv("PSCA_UC_FIXED", "1", 1);
    VmPredictor vm_fixed(packageFromDual(predictor, cols));
    unsetenv("PSCA_UC_FIXED");
    const ClosedLoopResult fixed_run =
        runClosedLoop(workload, record, vm_fixed, build, SlaSpec{});

    reg.gauge("quant.closed_loop_ppw_float_pct")
        .set(float_run.ppwGainPct);
    reg.gauge("quant.closed_loop_ppw_fixed_pct")
        .set(fixed_run.ppwGainPct);
    reg.gauge("quant.closed_loop_ppw_delta_pct")
        .set(fixed_run.ppwGainPct - float_run.ppwGainPct);
    reg.gauge("quant.closed_loop_rsv_float_pct")
        .set(float_run.rsv * 100.0);
    reg.gauge("quant.closed_loop_rsv_fixed_pct")
        .set(fixed_run.rsv * 100.0);
    reg.gauge("quant.uc_ops_per_inference_float")
        .set(vm_float.opsPerInference());
    reg.gauge("quant.uc_ops_per_inference_int8")
        .set(vm_fixed.opsPerInference());
    std::printf(
        "\n-- closed loop through firmware VM --\n"
        "float  package: PPW %+.2f%%, RSV %.3f%%, %u ops/inference, "
        "%llu uc ops total\n"
        "int8   package: PPW %+.2f%%, RSV %.3f%%, %u ops/inference, "
        "%llu uc ops total\n",
        float_run.ppwGainPct, float_run.rsv * 100.0,
        vm_float.opsPerInference(),
        static_cast<unsigned long long>(float_run.ucOps),
        fixed_run.ppwGainPct, fixed_run.rsv * 100.0,
        vm_fixed.opsPerInference(),
        static_cast<unsigned long long>(fixed_run.ucOps));

    // The whole point of the int8 path: the same decisions must fit
    // a strictly smaller slice of the 500-MIPS uc budget.
    PSCA_ASSERT(vm_fixed.opsPerInference() <
                    vm_float.opsPerInference(),
                "int8 path is not cheaper than the float path");
    return 0;
}

int
main()
{
    return psca::runner::guardedMain([] { return run(); });
}
