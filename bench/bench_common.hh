/**
 * @file
 * Shared plumbing for the experiment benches: context setup (with the
 * shared on-disk record cache), trace-index helpers, and formatting.
 * Every bench prints the rows/series of one paper table or figure;
 * EXPERIMENTS.md records paper-vs-measured values.
 */

#ifndef PSCA_BENCH_COMMON_HH
#define PSCA_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "obs/report.hh"
#include "obs/stats.hh"

namespace psca {
namespace bench {

/**
 * Per-bench run report: declare one at the top of main() and the
 * stat registry (phase timings, decision-latency histogram, gate and
 * transition counters, suite gauges) is dumped to BENCH_<name>.json
 * when the bench exits, alongside the stdout table. PSCA_REPORT=0
 * disables the file; PSCA_REPORT_DIR redirects it.
 *
 * Safe for benches that run parallel regions: the dump takes the
 * registry mutex and the phase-tree lock for the whole traversal,
 * and stdio is flushed first (here and in writeRunReport), so the
 * JSON lands after every table row already printed.
 */
class ReportGuard
{
  public:
    explicit ReportGuard(const char *name)
        : guard_("BENCH_" + std::string(name))
    {}

    ~ReportGuard()
    {
        // Members destruct after this body: the gauges land in the
        // registry and the flush lands right before guard_ writes
        // BENCH_<name>.json.
        setReplayThroughputGauges();
        std::fflush(stdout);
        std::fflush(stderr);
    }

  private:
    /**
     * Derive whole-run simulator throughput from the sim.* counters
     * (replay wall time, instructions, cycles) so every BENCH_*.json
     * reports replay speed in the same units the perf-smoke CI job
     * checks. A fully cache-warm bench simulates nothing and honestly
     * reports 0.
     */
    static void
    setReplayThroughputGauges()
    {
        auto &reg = obs::StatRegistry::instance();
        const obs::Counter *ns = reg.findCounter("sim.replay_ns");
        const obs::Counter *instr =
            reg.findCounter("sim.instructions_retired");
        const obs::Counter *cycles = reg.findCounter("sim.cycles");
        // count / (ns * 1e-9) / 1e6  ==  count * 1e3 / ns
        const double per_ns_to_mega = ns != nullptr && ns->value() > 0
            ? 1e3 / static_cast<double>(ns->value())
            : 0.0;
        reg.gauge("sim.replay_muops_per_s")
            .set(instr != nullptr
                     ? static_cast<double>(instr->value()) *
                         per_ns_to_mega
                     : 0.0);
        reg.gauge("sim.replay_mcycles_per_s")
            .set(cycles != nullptr
                     ? static_cast<double>(cycles->value()) *
                         per_ns_to_mega
                     : 0.0);
    }

    obs::RunReportGuard guard_;
};

/** Print a banner naming the experiment. */
inline void
banner(const char *title)
{
    std::printf("\n================================================"
                "====================\n%s\n"
                "================================================"
                "====================\n",
                title);
}

/** Indices of all SPEC traces in the context. */
inline std::vector<size_t>
allTraceIndices(const ExperimentContext &ctx)
{
    std::vector<size_t> idx(ctx.spec.size());
    for (size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    return idx;
}

/** Indices of one SPEC app's traces. */
inline std::vector<size_t>
appTraceIndices(const ExperimentContext &ctx, size_t app)
{
    std::vector<size_t> idx;
    for (size_t i = 0; i < ctx.spec.size(); ++i)
        if (ctx.spec[i].appId == static_cast<uint32_t>(app))
            idx.push_back(i);
    return idx;
}

/** Indices of the SPECint or SPECfp half of the suite. */
inline std::vector<size_t>
suiteTraceIndices(const ExperimentContext &ctx, bool fp)
{
    std::vector<size_t> idx;
    for (size_t i = 0; i < ctx.spec.size(); ++i)
        if (ctx.specApps[ctx.spec[i].appId].isFp == fp)
            idx.push_back(i);
    return idx;
}

/** Offline evaluation of one trained dual model on SPEC telemetry. */
inline EvalResult
offlineEval(const ExperimentContext &ctx, const ScaledModel &slot,
            CoreMode mode, const std::vector<size_t> &columns,
            uint64_t granularity, double p_sla)
{
    AssemblyOptions opts;
    opts.granularityInstr = granularity;
    opts.pSla = p_sla;
    opts.telemetryMode = mode;
    opts.columns = columns;
    const Dataset raw =
        assembleDataset(ctx.spec, opts, ctx.build.intervalInstr);
    const Dataset scaled = slot.scaler.apply(raw);
    SlaSpec sla;
    sla.pSla = p_sla;
    const uint64_t window = sla.windowPredictions(
        ctx.build.core.clockGhz * 1e9 * ctx.build.core.retireWidth,
        granularity);
    return evaluateModel(*slot.model, scaled, window);
}

} // namespace bench
} // namespace psca

#endif // PSCA_BENCH_COMMON_HH
