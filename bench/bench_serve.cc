/**
 * @file
 * Online-adaptation-service bench: drive the serve state machine
 * (DESIGN.md §15) through a category-shifting workload schedule and
 * report the lifecycle economics — blocks served, drift windows until
 * detection, retrain/shadow/promotion counts, and the live PPW gain
 * before and after the hot-swap — into BENCH_serve.json.
 *
 * Not a paper experiment: the paper ships retrained firmware through
 * datacenter infrastructure management (Sec. 3.2) but does not
 * evaluate the online plumbing. This bench quantifies the
 * reproduction's adaptation-latency story: how much telemetry the
 * service needs before a planted distribution shift turns into a
 * verified firmware swap.
 */

#include "bench_common.hh"

#include <filesystem>

#include "serve/service.hh"
#include "trace/genome.hh"

using namespace psca;
using namespace psca::bench;

namespace {

BuildConfig
serveBenchConfig()
{
    BuildConfig cfg;
    cfg.intervalInstr = 10000;
    cfg.warmupInstr = 20000;
    cfg.counterIds = {
        CounterRegistry::index(Ctr::InstRetired),
        CounterRegistry::index(Ctr::StallCount),
        CounterRegistry::index(Ctr::L1dMiss),
        CounterRegistry::index(Ctr::LoadLatSum),
        CounterRegistry::index(Ctr::MshrOccSum),
        CounterRegistry::index(Ctr::UopsStalledOnDep),
        CounterRegistry::index(Ctr::UopsReady),
        CounterRegistry::index(Ctr::SqOccSum),
    };
    return cfg;
}

Workload
categoryWorkload(AppCategory cat, uint64_t seed, uint64_t len)
{
    Workload w;
    w.genome = sampleGenome(cat, seed);
    w.inputSeed = 1;
    w.lengthInstr = len;
    w.name = w.genome.name;
    return w;
}

} // namespace

int
main()
{
    ReportGuard report("serve");
    auto &reg = obs::StatRegistry::instance();

    const std::string dir = cacheDirectory() + "/bench_serve_ring";
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);

    serve::ServeConfig cfg;
    cfg.dir = dir;
    cfg.seed = 21;
    cfg.granularityInstr = 20000;
    cfg.columns = {0, 1, 2, 3, 4, 5, 6, 7};
    cfg.forestTrees = 4;
    cfg.forestDepth = 6;
    cfg.driftWindow = 8;
    cfg.driftZ = 2.0;
    cfg.abIntervals = 12;
    cfg.probationIntervals = 12;
    cfg.cooldownBlocks = 16;

    // Multimedia -> HpcPerf: the retrained candidate beats the stale
    // model on both accuracy and energy, so the default A/B gate
    // promotes and the bench exercises the whole lifecycle. (The
    // reverse order plants a shift whose better candidate costs more
    // energy — the gate rejects it, which is correct but shows less.)
    const uint64_t len = 600000;
    std::vector<serve::ServeSegment> schedule = {
        {categoryWorkload(AppCategory::Multimedia, 7, len), 64},
        {categoryWorkload(AppCategory::HpcPerf, 2, len), 64},
    };

    BuildConfig build = serveBenchConfig();
    serve::Service service(cfg, build, schedule);
    const serve::ServeOutcome &out = service.run();

    std::printf("%-28s %s\n", "metric", "value");
    std::printf("%-28s %llu\n", "blocks served",
                static_cast<unsigned long long>(out.blocks));
    std::printf("%-28s %llu\n", "drifts detected",
                static_cast<unsigned long long>(out.driftsDetected));
    std::printf("%-28s %llu\n", "retrains",
                static_cast<unsigned long long>(out.retrains));
    std::printf("%-28s %llu\n", "shadow intervals scored",
                static_cast<unsigned long long>(out.shadowsScored));
    std::printf("%-28s %llu\n", "promotions",
                static_cast<unsigned long long>(out.promotions));
    std::printf("%-28s %llu\n", "rejections",
                static_cast<unsigned long long>(out.rejections));
    std::printf("%-28s %llu\n", "rollbacks",
                static_cast<unsigned long long>(out.rollbacks));
    std::printf("%-28s v%u\n", "active firmware",
                out.activeVersion);
    std::printf("%-28s %+.2f%%\n", "PPW vs high-only",
                out.ppwGainPct);
    std::printf("\nlifecycle:\n");
    for (const std::string &line : out.lifecycle)
        std::printf("  %s\n", line.c_str());

    reg.gauge("serve.bench_blocks")
        .set(static_cast<double>(out.blocks));
    reg.gauge("serve.bench_drifts")
        .set(static_cast<double>(out.driftsDetected));
    reg.gauge("serve.bench_promotions")
        .set(static_cast<double>(out.promotions));
    reg.gauge("serve.bench_rollbacks")
        .set(static_cast<double>(out.rollbacks));
    reg.gauge("serve.bench_ppw_gain_pct").set(out.ppwGainPct);
    return 0;
}
