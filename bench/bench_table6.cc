/**
 * @file
 * Table 6: application-specific retraining (Sec. 7.3). For each SPEC
 * app with >= 5 workloads where the general Best RF left headroom
 * (PGOS < 95%), retrain a combined forest (4 HDTR trees + 4 trees
 * from the app's *other* inputs) and evaluate on a held-out input —
 * the optimization-as-a-service flow.
 */

#include "bench_common.hh"
#include "core/runner.hh"

using namespace psca;
using namespace psca::bench;

static int
run()
{
    banner("Table 6 -- app-specific retraining (Sec. 7.3)");
    ReportGuard report("table6");

    const ScaleConfig scale = ScaleConfig::fromEnv();
    ExperimentContext ctx = setupExperiment(scale, true);

    NamedPredictor general = makeBestRf(ctx, 0.90);

    std::printf("%-20s %12s %14s %8s | %9s %9s\n", "benchmark",
                "general PPW", "app-spec PPW", "delta", "gen RSV",
                "app RSV");

    double sum_delta = 0.0;
    int apps_counted = 0, improved = 0;
    for (size_t a = 0; a < ctx.specApps.size(); ++a) {
        if (ctx.specApps[a].numInputs < 5)
            continue;
        const auto idx = appTraceIndices(ctx, a);
        if (idx.size() < 2)
            continue;

        // General model on the whole app.
        const SuiteResult gen =
            evaluateSuite(ctx, *general.predictor, idx, 0.90);
        if (gen.pgosPct >= 95.0)
            continue; // no headroom (paper's selection criterion)

        // Hold out the last input's traces; train on the rest.
        const uint64_t held_input =
            ctx.specWorkloadsList[idx.back()].inputSeed;
        std::vector<TraceRecord> train_records;
        std::vector<size_t> eval_idx;
        for (size_t i : idx) {
            if (ctx.specWorkloadsList[i].inputSeed == held_input)
                eval_idx.push_back(i);
            else
                train_records.push_back(ctx.spec[i]);
        }
        if (train_records.empty() || eval_idx.empty())
            continue;

        NamedPredictor app_rf =
            makeAppSpecificRf(ctx, train_records, 0.90);
        const SuiteResult gen_held =
            evaluateSuite(ctx, *general.predictor, eval_idx, 0.90);
        const SuiteResult app_held =
            evaluateSuite(ctx, *app_rf.predictor, eval_idx, 0.90);

        const double delta =
            app_held.ppwGainPct - gen_held.ppwGainPct;
        sum_delta += delta;
        ++apps_counted;
        improved += delta > 0.0 ? 1 : 0;
        std::printf("%-20s %+11.1f%% %+13.1f%% %+7.1f%% | %8.2f%% "
                    "%8.2f%%\n",
                    ctx.specApps[a].genome.name.c_str(),
                    gen_held.ppwGainPct, app_held.ppwGainPct, delta,
                    gen_held.rsvPct, app_held.rsvPct);
    }
    std::printf("\n%d of %d apps improved; mean delta %+.1f%%   "
                "[paper: 8 of 11 improved, up to +8.5%%]\n",
                improved, apps_counted,
                apps_counted ? sum_delta / apps_counted : 0.0);
    return 0;
}

int
main()
{
    return psca::runner::guardedMain(run);
}
