/**
 * @file
 * Table 3: the microcontroller ops budget per prediction granularity
 * (left) and ops / memory / PGOS for the model zoo (right). PGOS is
 * computed on a held-out 20% of HDTR applications after training on
 * the other 80% (the Sec. 6.3 screening protocol, single fold at
 * bench scale).
 */

#include "bench_common.hh"

#include "ml/linear.hh"
#include "ml/svm.hh"
#include "uc/budget.hh"
#include "core/runner.hh"

using namespace psca;
using namespace psca::bench;

namespace {

struct ZooEntry
{
    std::string name;
    std::string config;
    std::unique_ptr<Model> model;
    double pgos = 0.0;
};

} // namespace

static int
run()
{
    banner("Table 3 -- microcontroller budgets and the model zoo");
    ReportGuard report("table3");

    const UcBudget budget;
    std::printf("CPU: 2.0 GHz, 8-wide, 16,000 MIPS | "
                "microcontroller: 500 MIPS, 50%% available\n\n");
    std::printf("%-14s %-16s %-12s\n", "granularity", "max uC ops",
                "ops budget");
    for (uint64_t l : {10000, 20000, 30000, 40000, 50000, 60000,
                       100000}) {
        std::printf("%-14lu %-16lu %-12lu\n",
                    static_cast<unsigned long>(l),
                    static_cast<unsigned long>(budget.maxOps(l)),
                    static_cast<unsigned long>(budget.opsBudget(l)));
    }

    // ---- Model zoo ----------------------------------------------------
    const ScaleConfig scale = ScaleConfig::fromEnv();
    ExperimentContext ctx = setupExperiment(scale, false);

    // Low-power-mode telemetry at the 10k base interval (the harder
    // problem, Sec. 6.1), PF-12 counters (8 for the CHARSTAR row).
    AssemblyOptions opts;
    opts.granularityInstr = 10000;
    opts.telemetryMode = CoreMode::LowPower;
    opts.columns = ctx.plan.pfColumns(12);
    const Dataset pf12 =
        assembleDataset(ctx.hdtr, opts, ctx.build.intervalInstr);
    opts.columns = ctx.plan.charstarColumns();
    const Dataset expert8 =
        assembleDataset(ctx.hdtr, opts, ctx.build.intervalInstr);

    auto holdout = [&](const Dataset &full, auto factory) {
        const FoldSplit split = appLevelSplit(full, 0.8, 99);
        Dataset tune_raw = full.subset(split.tuneIdx);
        if (scale.maxTuneSamples &&
            tune_raw.numSamples() > scale.maxTuneSamples) {
            std::vector<size_t> keep(scale.maxTuneSamples);
            for (size_t i = 0; i < keep.size(); ++i)
                keep[i] = i * (tune_raw.numSamples() / keep.size());
            tune_raw = tune_raw.subset(keep);
        }
        const FeatureScaler scaler = FeatureScaler::fit(tune_raw);
        const Dataset tune = scaler.apply(tune_raw);
        const Dataset valid = scaler.apply(full.subset(split.validIdx));
        std::unique_ptr<Model> model = factory(tune);
        const EvalResult eval = evaluateModel(*model, valid, 1600);
        return std::pair(std::move(model), eval.pgos);
    };

    std::vector<ZooEntry> zoo;
    const int epochs = scale.mlpEpochs;

    auto add = [&](const char *name, const char *config,
                   const Dataset &data, auto factory) {
        auto [model, pgos] = holdout(data, factory);
        zoo.push_back(
            ZooEntry{name, config, std::move(model), pgos});
    };

    add("Multi Layer Perceptron", "3 layers, 32/32/16, ReLU", pf12,
        [&](const Dataset &t) -> std::unique_ptr<Model> {
            MlpConfig c;
            c.hiddenLayers = {32, 32, 16};
            c.epochs = epochs;
            return trainMlp(t, c);
        });
    add("Decision Tree", "max depth 16", pf12,
        [&](const Dataset &t) -> std::unique_ptr<Model> {
            TreeConfig c;
            c.maxDepth = 16;
            return std::make_unique<DecisionTree>(
                t, std::vector<size_t>{}, c);
        });
    add("Support Vector Machine", "chi^2 kernel, <=1000 SVs", pf12,
        [&](const Dataset &t) -> std::unique_ptr<Model> {
            Chi2SvmConfig c;
            c.maxSupportVectors = 1000;
            c.epochs = 2;
            return std::make_unique<Chi2Svm>(t, c);
        });
    add("Random Forest", "16 trees, max depth 8", pf12,
        [&](const Dataset &t) -> std::unique_ptr<Model> {
            ForestConfig c;
            c.numTrees = 16;
            c.maxDepth = 8;
            return std::make_unique<RandomForest>(t, c);
        });
    add("Random Forest", "8 trees, max depth 8", pf12,
        [&](const Dataset &t) -> std::unique_ptr<Model> {
            ForestConfig c;
            c.numTrees = 8;
            c.maxDepth = 8;
            return std::make_unique<RandomForest>(t, c);
        });
    add("Multi Layer Perceptron", "3 layers, 8/8/4, ReLU", pf12,
        [&](const Dataset &t) -> std::unique_ptr<Model> {
            MlpConfig c;
            c.hiddenLayers = {8, 8, 4};
            c.epochs = epochs;
            return trainMlp(t, c);
        });
    add("Multi Layer Perceptron", "1 layer, 10 (CHARSTAR-eq)",
        expert8, [&](const Dataset &t) -> std::unique_ptr<Model> {
            MlpConfig c;
            c.hiddenLayers = {10};
            c.epochs = epochs;
            return trainMlp(t, c);
        });
    add("Support Vector Machine", "linear kernel, 5-ensemble", pf12,
        [&](const Dataset &t) -> std::unique_ptr<Model> {
            return std::make_unique<LinearSvmEnsemble>(
                t, LinearSvmConfig{});
        });
    add("Regression", "logistic", pf12,
        [&](const Dataset &t) -> std::unique_ptr<Model> {
            return std::make_unique<LogisticRegression>(
                t, LogRegConfig{});
        });

    std::printf("\n%-24s %-28s %8s %9s %12s %8s\n", "model class",
                "configuration", "#inputs", "ops/pred", "memory",
                "PGOS");
    for (const auto &e : zoo) {
        char mem[32];
        const size_t bytes = e.model->memoryFootprintBytes();
        if (bytes >= 1024)
            std::snprintf(mem, sizeof(mem), "%.2fKB",
                          static_cast<double>(bytes) / 1024.0);
        else
            std::snprintf(mem, sizeof(mem), "%zuB", bytes);
        std::printf("%-24s %-28s %8zu %9u %12s %7.2f%%\n",
                    e.name.c_str(), e.config.c_str(),
                    e.model->numInputs(), e.model->opsPerInference(),
                    mem, e.pgos * 100.0);
    }
    std::printf("\n(paper ops: MLP-32/32/16 6,162 | tree-16 133 | "
                "chi2 SVM ~121k | RF16 1,074 | RF8 538 |\n MLP-8/8/4 "
                "678 | CHARSTAR 292 | linear SVM 412 | LR 158)\n");
    return 0;
}

int
main()
{
    return psca::runner::guardedMain(run);
}
