/**
 * @file
 * Fault sweep: what happens to the closed adaptation loop when the
 * deployment environment misbehaves. The example
 *
 *   1. records one workload and trains a small dual forest,
 *   2. runs the guardrailed closed loop fault-free,
 *   3. re-runs it under an escalating deterministic fault mix
 *      (dropped telemetry snapshots, counter noise, stuck counters,
 *      firmware deadline misses) via FaultRegistry::configure(),
 *   4. prints the RSV/PPW degradation curve next to the degraded-mode
 *      responses the controller mounted.
 *
 * The same mixes can be applied to any binary without code changes:
 *
 *   PSCA_FAULTS="telemetry.dropped_snapshot:0.05,uc.deadline_miss:0.1"
 *   PSCA_FAULT_SEED=7
 *
 * Every fault draw is a pure function of (seed, site, stream key), so
 * a sweep point reproduces bit-identically at any PSCA_THREADS.
 */

#include <cstdio>

#include "common/fault.hh"
#include "core/guardrail.hh"
#include "core/pipeline.hh"
#include "obs/report.hh"
#include "obs/stats.hh"
#include "core/runner.hh"

using namespace psca;

namespace {

uint64_t
counterValue(const char *name)
{
    const auto *c =
        obs::StatRegistry::instance().findCounter(name);
    return c ? c->value() : 0;
}

} // namespace

static int
run()
{
    obs::RunReportGuard report("fault_sweep_report");

    // ---- 1. One mixed workload, recorded in both modes -------------
    AppGenome app = sampleGenome(AppCategory::HpcPerf, /*seed=*/2025);
    Workload workload;
    workload.genome = app;
    workload.inputSeed = 1;
    workload.lengthInstr = 600000;
    workload.name = app.name;

    BuildConfig build;
    build.counterIds = {
        CounterRegistry::index(Ctr::InstRetired),
        CounterRegistry::index(Ctr::StallCount),
        CounterRegistry::index(Ctr::L1dMiss),
        CounterRegistry::index(Ctr::LoadLatSum),
        CounterRegistry::index(Ctr::MshrOccSum),
        CounterRegistry::index(Ctr::UopsStalledOnDep),
    };
    std::printf("recording '%s'...\n", workload.name.c_str());
    const TraceRecord record = recordTrace(workload, build, 0, 0);

    DualTrainOptions opts;
    opts.granularityInstr = 20000;
    opts.columns = {0, 1, 2, 3, 4, 5};
    opts.rsvWindow = 64;
    TrainedDual dual = trainDual(
        {record}, build, opts,
        [](const Dataset &tune, uint64_t seed) -> std::unique_ptr<Model> {
            ForestConfig fc;
            fc.numTrees = 4;
            fc.maxDepth = 6;
            fc.seed = seed;
            return std::make_unique<RandomForest>(tune, fc);
        });

    // ---- 2-4. Sweep the fault intensity through the closed loop ----
    auto &faults = FaultRegistry::instance();
    const double rates[] = {0.0, 0.02, 0.1, 0.25};

    std::printf("\n%-7s %8s %8s %8s  %s\n", "rate", "RSV%", "PPW%",
                "perf%", "carry/miss/veto/trip");
    for (const double m : rates) {
        if (m > 0.0) {
            char spec[192];
            std::snprintf(spec, sizeof(spec),
                          "telemetry.dropped_snapshot:%.3f,"
                          "telemetry.noise:%.3f:0.05,"
                          "telemetry.stuck_counter:%.3f,"
                          "uc.deadline_miss:%.3f",
                          m, m, m / 2.0, m);
            faults.configure(spec);
        } else {
            faults.configure("");
        }

        const uint64_t carry0 =
            counterValue("controller.snapshot_carryforwards");
        const uint64_t miss0 =
            counterValue("controller.deadline_misses");
        const uint64_t veto0 =
            counterValue("controller.sanitize_vetoes");
        const uint64_t trip0 =
            counterValue("controller.guardrail_trips");

        DualModelPredictor inner(dual.high, dual.low, opts.columns,
                                 opts.granularityInstr, "rf");
        GuardrailedPredictor guarded(inner);
        const ClosedLoopResult r = runClosedLoop(
            workload, record, guarded, build, SlaSpec{});

        std::printf(
            "%-7.3f %8.2f %8.2f %8.2f  %llu/%llu/%llu/%llu\n", m,
            r.rsv * 100, r.ppwGainPct, r.perfRelativePct,
            static_cast<unsigned long long>(
                counterValue("controller.snapshot_carryforwards") -
                carry0),
            static_cast<unsigned long long>(
                counterValue("controller.deadline_misses") - miss0),
            static_cast<unsigned long long>(
                counterValue("controller.sanitize_vetoes") - veto0),
            static_cast<unsigned long long>(
                counterValue("controller.guardrail_trips") - trip0));
    }

    // Leave the last mix armed: its fault.<site>.fires tallies export
    // into the JSON report next to the degradation counters.
    std::printf("\nfault.<site>.fires gauges from the last sweep "
                "point land in the JSON report.\n");
    return 0;
}

int
main()
{
    return psca::runner::guardedMain(run);
}
