/**
 * @file
 * Quickstart: the whole predictive-cluster-gating loop on one
 * workload, end to end —
 *
 *   1. describe a workload and record dual-mode telemetry,
 *   2. train a Best-RF-style dual adaptation model from it,
 *   3. compile the low-power model to microcontroller firmware and
 *      check it against the ops budget,
 *   4. run the workload closed-loop under predictive cluster gating
 *      and report PPW gain, performance, and SLA behaviour.
 */

#include <cstdio>
#include <iostream>

#include "core/controller.hh"
#include "core/pipeline.hh"
#include "obs/report.hh"
#include "obs/stats.hh"
#include "uc/budget.hh"
#include "uc/compilers.hh"
#include "core/runner.hh"

using namespace psca;

static int
run()
{
    // Dumps the stat registry (phase tree, decision-latency
    // histogram, gate/transition counters) as JSON on exit.
    obs::RunReportGuard report("quickstart_report");
    // ---- 1. A workload: one application genome, one input ----------
    AppGenome app = sampleGenome(AppCategory::HpcPerf, /*seed=*/2025);
    Workload workload;
    workload.genome = app;
    workload.inputSeed = 1;
    workload.lengthInstr = 600000;
    workload.name = app.name;

    BuildConfig build;
    build.counterIds = {
        CounterRegistry::index(Ctr::InstRetired),
        CounterRegistry::index(Ctr::StallCount),
        CounterRegistry::index(Ctr::L1dMiss),
        CounterRegistry::index(Ctr::LoadLatSum),
        CounterRegistry::index(Ctr::MshrOccSum),
        CounterRegistry::index(Ctr::UopsStalledOnDep),
        CounterRegistry::index(Ctr::UopsReady),
        CounterRegistry::index(Ctr::SqOccSum),
    };

    std::printf("recording '%s' in both cluster configurations...\n",
                workload.name.c_str());
    const TraceRecord record = recordTrace(workload, build, 0, 0);
    std::printf("  %zu intervals of %lu instructions; ideal "
                "low-power residency %.1f%%\n",
                record.numIntervals(),
                static_cast<unsigned long>(build.intervalInstr),
                idealLowPowerResidency({record}, 0.90) * 100);

    // ---- 2. Train the dual adaptation model (one per mode) ---------
    DualTrainOptions opts;
    opts.granularityInstr = 40000; // Best RF's budgeted granularity
    opts.columns = {0, 1, 2, 3, 4, 5, 6, 7};
    opts.rsvWindow = 400;
    TrainedDual dual = trainDual(
        {record}, build, opts,
        [](const Dataset &tune, uint64_t seed) -> std::unique_ptr<Model> {
            ForestConfig fc;
            fc.numTrees = 8;
            fc.maxDepth = 8;
            fc.seed = seed;
            return std::make_unique<RandomForest>(tune, fc);
        });
    std::printf("trained %s (threshold %.2f)\n",
                dual.low.model->describe().c_str(),
                dual.low.model->threshold());

    // ---- 3. Compile to firmware & check the ops budget -------------
    const auto *forest =
        dynamic_cast<const RandomForest *>(dual.low.model.get());
    const UcProgram firmware = compileForest(*forest);
    UcBudget budget;
    std::printf("firmware image: %zu bytes, %lu ops/prediction "
                "(budget at 40k instructions: %lu)\n",
                firmware.imageBytes(),
                static_cast<unsigned long>(firmware.staticOpCount()),
                static_cast<unsigned long>(budget.opsBudget(40000)));

    // ---- 4. Closed-loop predictive cluster gating -------------------
    DualModelPredictor predictor(dual.high, dual.low, opts.columns,
                                 opts.granularityInstr, "quickstart");
    const ClosedLoopResult result =
        runClosedLoop(workload, record, predictor, build, SlaSpec{});

    std::printf("\nclosed-loop result:\n");
    std::printf("  PPW gain          %+.1f%%\n", result.ppwGainPct);
    std::printf("  performance       %.1f%% of high-perf mode\n",
                result.perfRelativePct);
    std::printf("  low-power blocks  %.1f%%\n",
                result.lowResidency * 100);
    std::printf("  PGOS              %.1f%%\n", result.pgos * 100);
    std::printf("  RSV               %.2f%%\n", result.rsv * 100);
    std::printf("  mode switches     %lu\n",
                static_cast<unsigned long>(result.modeSwitches));

    std::printf("\nobservability (full JSON report on exit):\n");
    obs::StatRegistry::instance().dumpText(std::cout);
    return 0;
}

int
main()
{
    return psca::runner::guardedMain(run);
}
