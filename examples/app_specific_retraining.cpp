/**
 * @file
 * Optimization-as-a-service (Sec. 3.2 / 7.3): a customer runs one
 * application at fleet scale. They trace a few executions on-site;
 * the vendor replays the traces, retrains a combined forest (general
 * trees + application-specific trees), and ships the firmware back.
 * Subsequent executions on *new inputs* gain PPW.
 */

#include <cstdio>

#include "obs/report.hh"

#include "core/pipeline.hh"
#include "core/runner.hh"

using namespace psca;

namespace {

const std::vector<size_t> kColumns{0, 1, 2, 3, 4, 5, 6, 7};

BuildConfig
buildConfig()
{
    BuildConfig build;
    build.counterIds = {
        CounterRegistry::index(Ctr::InstRetired),
        CounterRegistry::index(Ctr::StallCount),
        CounterRegistry::index(Ctr::L1dMiss),
        CounterRegistry::index(Ctr::LoadLatSum),
        CounterRegistry::index(Ctr::MshrOccSum),
        CounterRegistry::index(Ctr::UopsStalledOnDep),
        CounterRegistry::index(Ctr::UopsReady),
        CounterRegistry::index(Ctr::SqOccSum),
    };
    return build;
}

std::unique_ptr<Model>
makeForest(const Dataset &tune, uint64_t seed, int trees)
{
    ForestConfig fc;
    fc.numTrees = trees;
    fc.maxDepth = 8;
    fc.seed = seed;
    return std::make_unique<RandomForest>(tune, fc);
}

} // namespace

static int
run()
{
    obs::RunReportGuard report("app_specific_retraining_report");
    const BuildConfig build = buildConfig();

    // The vendor's general training repository (HDTR stand-in).
    std::printf("recording the vendor's general trace repository...\n");
    std::vector<TraceRecord> general;
    for (uint64_t i = 0; i < 36; ++i) {
        Workload w;
        w.genome = sampleGenome(
            static_cast<AppCategory>(i % 6), 900 + i);
        w.inputSeed = 1;
        w.lengthInstr = 300000;
        w.name = w.genome.name;
        general.push_back(
            recordTrace(w, build, static_cast<uint32_t>(i), 0));
    }

    // The customer's application (xz-like), five inputs: four
    // are traced for retraining, the fifth is "next week's run".
    const SpecApp target = buildSpecApps()[9]; // 657.xz_s
    std::printf("customer application: %s\n",
                target.genome.name.c_str());
    std::vector<Workload> inputs;
    std::vector<TraceRecord> app_records;
    for (uint64_t in = 1; in <= 5; ++in) {
        Workload w;
        w.genome = target.genome;
        w.inputSeed = in;
        w.lengthInstr = 500000;
        w.name = target.genome.name + ".in" + std::to_string(in);
        app_records.push_back(recordTrace(
            w, build, 100, static_cast<uint32_t>(in)));
        inputs.push_back(std::move(w));
    }
    const std::vector<TraceRecord> trace_set(app_records.begin(),
                                             app_records.end() - 1);

    // General-only model vs combined (4 general + 4 app trees).
    auto trainPair = [&](bool app_specific) {
        TrainedDual dual;
        for (int m = 0; m < 2; ++m) {
            AssemblyOptions ao;
            ao.granularityInstr = 40000;
            ao.telemetryMode =
                m == 0 ? CoreMode::HighPerf : CoreMode::LowPower;
            ao.columns = kColumns;
            const Dataset gen_raw =
                assembleDataset(general, ao, build.intervalInstr);
            ScaledModel slot;
            slot.scaler = FeatureScaler::fit(gen_raw);
            const Dataset gen = slot.scaler.apply(gen_raw);
            if (!app_specific) {
                slot.model = makeForest(gen, 50 + m, 8);
            } else {
                const Dataset app = slot.scaler.apply(assembleDataset(
                    trace_set, ao, build.intervalInstr));
                auto g4 = makeForest(gen, 60 + m, 4);
                auto a4 = makeForest(app, 70 + m, 4);
                auto trees = dynamic_cast<RandomForest *>(g4.get())
                                 ->takeTrees();
                for (auto &t : dynamic_cast<RandomForest *>(a4.get())
                                   ->takeTrees())
                    trees.push_back(std::move(t));
                slot.model =
                    std::make_shared<RandomForest>(std::move(trees));
            }
            // Sensitivity calibration on the customer's traced
            // inputs keeps tuning-set RSV under 1% (Sec. 6.3).
            const Dataset calib_set = slot.scaler.apply(
                assembleDataset(trace_set, ao, build.intervalInstr));
            calibrateThreshold(*slot.model, calib_set, 400, 0.01);
            (m == 0 ? dual.high : dual.low) = std::move(slot);
        }
        return dual;
    };

    std::printf("\nevaluating on the held-out input (new data, same "
                "application):\n");
    std::printf("%-22s %-12s %-10s %-10s\n", "model", "PPW gain",
                "PGOS", "RSV");
    for (bool app_specific : {false, true}) {
        TrainedDual dual = trainPair(app_specific);
        DualModelPredictor predictor(
            dual.high, dual.low, kColumns, 40000,
            app_specific ? "combined" : "general");
        const ClosedLoopResult r =
            runClosedLoop(inputs.back(), app_records.back(),
                          predictor, build, SlaSpec{});
        std::printf("%-22s %+10.1f%% %8.1f%% %8.2f%%\n",
                    app_specific
                        ? "general+app (4+4 trees)"
                        : "general (8 trees)",
                    r.ppwGainPct, r.pgos * 100, r.rsv * 100);
    }
    std::printf("\nThe combined forest tailors gating to this "
                "application while the general trees guard against "
                "drift (paper Table 6: up to +8.5%% PPW).\n");
    return 0;
}

int
main()
{
    return psca::runner::guardedMain(run);
}
