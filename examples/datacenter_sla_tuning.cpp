/**
 * @file
 * Post-silicon SLA differentiation (Sec. 3.2 / 7.3): a data center
 * operator holds one physical CPU design but three customer tiers.
 * Retraining the adaptation model to each tier's SLA — a firmware
 * update, no silicon change — yields three effective CPUs with
 * distinct power/performance characteristics. We demonstrate on a
 * small fleet of cloud-style workloads.
 */

#include <cstdio>

#include "obs/report.hh"

#include "common/journal.hh"
#include "core/firmware_image.hh"
#include "core/pipeline.hh"
#include "core/runner.hh"

using namespace psca;

static int
run()
{
    obs::RunReportGuard report("datacenter_sla_tuning_report");
    // A small "fleet" of cloud workloads recorded once.
    BuildConfig build;
    build.counterIds = {
        CounterRegistry::index(Ctr::InstRetired),
        CounterRegistry::index(Ctr::StallCount),
        CounterRegistry::index(Ctr::L1dMiss),
        CounterRegistry::index(Ctr::LoadLatSum),
        CounterRegistry::index(Ctr::MshrOccSum),
        CounterRegistry::index(Ctr::UopsStalledOnDep),
        CounterRegistry::index(Ctr::UopsReady),
        CounterRegistry::index(Ctr::SqOccSum),
    };

    std::printf("recording a 12-workload mixed fleet...\n");
    std::vector<Workload> fleet;
    std::vector<uint32_t> app_ids;
    for (uint64_t i = 0; i < 12; ++i) {
        // Mixed tenant mix: cloud services plus HPC and media jobs,
        // so the SLA threshold actually binds on borderline phases.
        Workload w;
        w.genome = sampleGenome(
            static_cast<AppCategory>(i % 6), 500 + i);
        w.inputSeed = 1;
        w.lengthInstr = 400000;
        w.name = w.genome.name;
        fleet.push_back(std::move(w));
        app_ids.push_back(static_cast<uint32_t>(i));
    }
    // Corpus recording is cached, parallel, and — like the long
    // fleet-recording campaigns it stands in for — resumable: an
    // interrupted run picks up at the next unrecorded workload.
    const std::vector<TraceRecord> records =
        recordCorpus(fleet, app_ids, build, "sla_fleet");

    std::printf("\n%-10s %-10s %-12s %-16s %-12s\n", "tier", "P_SLA",
                "PPW gain", "perf vs high", "RSV");
    struct Tier { const char *name; double pSla; };
    std::vector<std::pair<std::string, FirmwarePackage>> images;
    for (const Tier &tier : {Tier{"premium", 0.90},
                             Tier{"standard", 0.80},
                             Tier{"economy", 0.70}}) {
        // Retrain to this tier's SLA: labels are recomputed from the
        // same telemetry (a pure firmware change).
        DualTrainOptions opts;
        opts.granularityInstr = 40000;
        opts.pSla = tier.pSla;
        opts.columns = {0, 1, 2, 3, 4, 5, 6, 7};
        opts.rsvWindow = 400;
        TrainedDual dual = trainDual(
            records, build, opts,
            [](const Dataset &tune,
               uint64_t seed) -> std::unique_ptr<Model> {
                ForestConfig fc;
                fc.numTrees = 8;
                fc.maxDepth = 8;
                fc.seed = seed;
                return std::make_unique<RandomForest>(tune, fc);
            });
        DualModelPredictor predictor(dual.high, dual.low,
                                     opts.columns, 40000, tier.name);
        images.emplace_back(
            cacheDirectory() + "/fw_" + tier.name + ".bin",
            packageFromDual(predictor, opts.columns));

        double ppw = 0, perf = 0, rsv = 0;
        SlaSpec sla;
        sla.pSla = tier.pSla;
        for (size_t i = 0; i < fleet.size(); ++i) {
            const ClosedLoopResult r = runClosedLoop(
                fleet[i], records[i], predictor, build, sla);
            ppw += r.ppwGainPct;
            perf += r.perfRelativePct;
            rsv += r.rsv * 100;
        }
        const double n = static_cast<double>(fleet.size());
        std::printf("%-10s %-10.2f %+10.1f%% %13.1f%% %10.2f%%\n",
                    tier.name, tier.pSla, ppw / n, perf / n,
                    rsv / n);
    }
    // Publish the whole fleet update as one transaction: the three
    // tier images land under their final names together or not at
    // all, so a crash mid-rollout can never leave the fleet serving
    // a mixed firmware generation.
    ArtifactTxn txn;
    for (const auto &[path, pkg] : images)
        pkg.write(txn.stage(path));
    if (txn.commit()) {
        std::printf("\nfleet update committed: %zu tier images "
                    "published atomically under %s\n",
                    images.size(), cacheDirectory().c_str());
    } else {
        warn("fleet firmware publish failed; no image replaced");
    }
    std::printf("\nOne die, three products: looser SLAs buy more "
                "gating and more PPW (paper Table 5: 21.9%% -> "
                "28.2%% -> 31.4%%).\n");
    return 0;
}

int
main()
{
    return psca::runner::guardedMain(run);
}
