/**
 * @file
 * Post-silicon SLA differentiation (Sec. 3.2 / 7.3): a data center
 * operator holds one physical CPU design but three customer tiers.
 * Retraining the adaptation model to each tier's SLA — a firmware
 * update, no silicon change — yields three effective CPUs with
 * distinct power/performance characteristics. We demonstrate on a
 * small fleet of cloud-style workloads.
 */

#include <cstdio>

#include "obs/report.hh"

#include "core/pipeline.hh"

using namespace psca;

int
main()
{
    obs::RunReportGuard report("datacenter_sla_tuning_report");
    // A small "fleet" of cloud workloads recorded once.
    BuildConfig build;
    build.counterIds = {
        CounterRegistry::index(Ctr::InstRetired),
        CounterRegistry::index(Ctr::StallCount),
        CounterRegistry::index(Ctr::L1dMiss),
        CounterRegistry::index(Ctr::LoadLatSum),
        CounterRegistry::index(Ctr::MshrOccSum),
        CounterRegistry::index(Ctr::UopsStalledOnDep),
        CounterRegistry::index(Ctr::UopsReady),
        CounterRegistry::index(Ctr::SqOccSum),
    };

    std::printf("recording a 12-workload mixed fleet...\n");
    std::vector<Workload> fleet;
    std::vector<TraceRecord> records;
    for (uint64_t i = 0; i < 12; ++i) {
        // Mixed tenant mix: cloud services plus HPC and media jobs,
        // so the SLA threshold actually binds on borderline phases.
        Workload w;
        w.genome = sampleGenome(
            static_cast<AppCategory>(i % 6), 500 + i);
        w.inputSeed = 1;
        w.lengthInstr = 400000;
        w.name = w.genome.name;
        records.push_back(
            recordTrace(w, build, static_cast<uint32_t>(i), 0));
        fleet.push_back(std::move(w));
    }

    std::printf("\n%-10s %-10s %-12s %-16s %-12s\n", "tier", "P_SLA",
                "PPW gain", "perf vs high", "RSV");
    struct Tier { const char *name; double pSla; };
    for (const Tier &tier : {Tier{"premium", 0.90},
                             Tier{"standard", 0.80},
                             Tier{"economy", 0.70}}) {
        // Retrain to this tier's SLA: labels are recomputed from the
        // same telemetry (a pure firmware change).
        DualTrainOptions opts;
        opts.granularityInstr = 40000;
        opts.pSla = tier.pSla;
        opts.columns = {0, 1, 2, 3, 4, 5, 6, 7};
        opts.rsvWindow = 400;
        TrainedDual dual = trainDual(
            records, build, opts,
            [](const Dataset &tune,
               uint64_t seed) -> std::unique_ptr<Model> {
                ForestConfig fc;
                fc.numTrees = 8;
                fc.maxDepth = 8;
                fc.seed = seed;
                return std::make_unique<RandomForest>(tune, fc);
            });
        DualModelPredictor predictor(dual.high, dual.low,
                                     opts.columns, 40000, tier.name);

        double ppw = 0, perf = 0, rsv = 0;
        SlaSpec sla;
        sla.pSla = tier.pSla;
        for (size_t i = 0; i < fleet.size(); ++i) {
            const ClosedLoopResult r = runClosedLoop(
                fleet[i], records[i], predictor, build, sla);
            ppw += r.ppwGainPct;
            perf += r.perfRelativePct;
            rsv += r.rsv * 100;
        }
        const double n = static_cast<double>(fleet.size());
        std::printf("%-10s %-10.2f %+10.1f%% %13.1f%% %10.2f%%\n",
                    tier.name, tier.pSla, ppw / n, perf / n,
                    rsv / n);
    }
    std::printf("\nOne die, three products: looser SLAs buy more "
                "gating and more PPW (paper Table 5: 21.9%% -> "
                "28.2%% -> 31.4%%).\n");
    return 0;
}
