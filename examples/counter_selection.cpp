/**
 * @file
 * PF counter selection on raw telemetry (Sec. 6.2): record all 936
 * counters over a diverse application set, run the low-activity and
 * standard-deviation screens, then the Perona-Freeman spectral
 * ranking, and print the surviving populations and the ranked
 * counters with their redundancy-group story.
 */

#include <cstdio>

#include "obs/report.hh"

#include "core/pf_selection.hh"
#include "trace/corpus.hh"
#include "core/runner.hh"

using namespace psca;

static int
run()
{
    obs::RunReportGuard report("counter_selection_report");
    // Record every telemetry counter over a 16-app sample.
    BuildConfig build;
    build.counterIds.resize(kNumTelemetryCounters);
    for (size_t i = 0; i < kNumTelemetryCounters; ++i)
        build.counterIds[i] = static_cast<uint16_t>(i);

    std::printf("recording all %zu counters over 16 applications...\n",
                kNumTelemetryCounters);
    std::vector<TraceRecord> records;
    for (uint64_t i = 0; i < 16; ++i) {
        Workload w;
        w.genome = sampleGenome(
            static_cast<AppCategory>(i % 6), 700 + i);
        w.inputSeed = 1;
        w.lengthInstr = 150000;
        w.name = w.genome.name;
        records.push_back(
            recordTrace(w, build, static_cast<uint32_t>(i), 0));
    }

    PfConfig cfg;
    cfg.numToSelect = 16;
    const PfResult result =
        pfCounterSelection(records, cfg, CoreMode::LowPower);

    std::printf("\nscreens: %zu counters -> %zu after the "
                "low-activity screen -> %zu after the std-dev screen"
                "\n(the paper's screens reduce 936 -> 308)\n",
                kNumTelemetryCounters, result.afterActivityScreen,
                result.survivors.size());

    const auto &reg = CounterRegistry::instance();
    std::printf("\nPF-ranked counters (information-content order):\n");
    for (size_t i = 0; i < result.selected.size(); ++i)
        std::printf("  %2zu. %s\n", i + 1,
                    reg.name(result.selected[i]).c_str());

    std::printf("\nEach pick removed its redundancy group (e.g. "
                "alternate encodings and correlated events), so the "
                "list above maximizes joint information content.\n");
    return 0;
}

int
main()
{
    return psca::runner::guardedMain(run);
}
